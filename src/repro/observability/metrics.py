"""Counters, gauges, and cycle-bucketed histograms behind one registry.

The simulator accumulated its operational statistics in ad-hoc shapes: the
``BackendStats`` dataclass, the scheme's ``SchemeStats``, bare attributes on
:class:`~repro.oram.path_oram.PathORAM`, the recovery ladder's
``RecoveryStats.as_dict``, and several hand-rolled ``Dict[str, int]``
builders in the profiler and the system collector.  The
:class:`MetricsRegistry` gives all of them one sink with three first-class
instrument kinds:

* :class:`Counter` -- monotonically increasing event count;
* :class:`Gauge` -- last-written value (watermarks, rates, occupancy);
* :class:`CycleHistogram` -- power-of-two bucketed latency distribution,
  the shape per-access cycle counts naturally take (one path access is
  ~1348 cycles; a PosMap-missing access is a small multiple of that).

Everything is plain Python and allocation-free on the update paths, so
metrics can be refreshed after a run (or periodically during one) without
perturbing the simulation.  Rendering and ``to_dict`` output are sorted by
name, which keeps exports deterministic for a fixed run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge")
        self.value += amount

    def set(self, value: int) -> None:
        """Snapshot-style update (collectors copy externally-owned totals)."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot decrease ({self.value} -> {value})"
            )
        self.value = value


class Gauge:
    """A point-in-time value: watermarks, occupancy, rates."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class CycleHistogram:
    """Power-of-two bucketed histogram for cycle-valued samples.

    Bucket ``i`` counts samples with ``2**(i-1) < value <= 2**i`` (bucket 0
    counts zeros and ones).  Powers of two fit latency data over many
    orders of magnitude in a handful of integers and need no configuration,
    which keeps recording one ``bit_length`` plus one list index.
    """

    __slots__ = ("name", "counts", "total", "sum")

    kind = "histogram"

    #: enough buckets for samples up to 2**47 cycles (~2 days at 1 GHz)
    NUM_BUCKETS = 48

    def __init__(self, name: str):
        self.name = name
        self.counts: List[int] = [0] * self.NUM_BUCKETS
        self.total = 0
        self.sum = 0

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError("cycle samples are non-negative")
        index = (value - 1).bit_length() if value > 1 else 0
        if index >= self.NUM_BUCKETS:
            index = self.NUM_BUCKETS - 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return 1 << index
        return 1 << (self.NUM_BUCKETS - 1)

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """(bucket upper bound, count) pairs for populated buckets."""
        return [
            (1 << index, count)
            for index, count in enumerate(self.counts)
            if count
        ]


Instrument = Union[Counter, Gauge, CycleHistogram]


class MetricsRegistry:
    """Create-or-get factory and export surface for named instruments.

    Names are dot-separated paths (``backend.demand_requests``,
    ``oram.stash.max_occupancy``); the renderer groups on the first
    segment.  Asking for an existing name with a different instrument kind
    is an error -- it means two components disagree about a metric.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------- factories
    def _get(self, name: str, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> CycleHistogram:
        return self._get(name, CycleHistogram)  # type: ignore[return-value]

    # --------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        for name in sorted(self._instruments):
            yield self._instruments[name]

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        """Scalar value of a counter/gauge (histograms report their mean)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, CycleHistogram):
            return instrument.mean
        return instrument.value

    # --------------------------------------------------------------- exports
    def to_dict(self) -> Dict[str, Dict]:
        """Deterministic JSON-ready snapshot, sorted by metric name."""
        out: Dict[str, Dict] = {}
        for instrument in self:
            if isinstance(instrument, CycleHistogram):
                out[instrument.name] = {
                    "kind": instrument.kind,
                    "total": instrument.total,
                    "sum": instrument.sum,
                    "buckets": instrument.nonzero_buckets(),
                }
            else:
                out[instrument.name] = {
                    "kind": instrument.kind,
                    "value": instrument.value,
                }
        return out

    def render(self, title: str = "metrics") -> str:
        """Human-readable report, grouped by the leading name segment."""
        lines = [f"{title}:"]
        current_group = None
        for instrument in self:
            group = instrument.name.split(".", 1)[0]
            if group != current_group:
                lines.append(f"  [{group}]")
                current_group = group
            if isinstance(instrument, CycleHistogram):
                lines.append(
                    f"    {instrument.name:<38} n={instrument.total:>10,}  "
                    f"mean={instrument.mean:>12,.1f}  "
                    f"p50<={instrument.quantile(0.5):,}  "
                    f"p99<={instrument.quantile(0.99):,}"
                )
            elif isinstance(instrument.value, float):
                lines.append(f"    {instrument.name:<38} {instrument.value:>14.4f}")
            else:
                lines.append(f"    {instrument.name:<38} {instrument.value:>14,}")
        return "\n".join(lines)
