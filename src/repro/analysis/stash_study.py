"""Stash occupancy studies (the Ren et al. design-space lens).

The stash is Path ORAM's pressure gauge: background evictions fire when it
overflows, and the super block schemes' costs show up here first (two
same-leaf blocks re-enter per access).  These helpers sample stash
occupancy across a run and summarize the distribution, powering the
``examples`` and quick what-if analyses:

    profile = stash_occupancy_profile(trace, "stat")
    print(profile.summary())
    print(sparkline(profile.samples[::50]))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.experiments import experiment_config
from repro.config import SystemConfig
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace


@dataclass
class StashProfile:
    """Occupancy samples (one per demand access) and derived statistics."""

    scheme: str
    capacity: int
    samples: List[int] = field(default_factory=list)
    background_evictions: int = 0
    soft_overflows: int = 0

    @property
    def peak(self) -> int:
        return max(self.samples, default=0)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> int:
        """Empirical quantile of the occupancy distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def occupancy_histogram(self, buckets: int = 10) -> List[int]:
        """Counts per equal-width occupancy bucket over [0, capacity]."""
        if buckets < 1:
            raise ValueError("need at least one bucket")
        width = max(1, (self.capacity + buckets - 1) // buckets)
        counts = [0] * buckets
        for sample in self.samples:
            counts[min(buckets - 1, sample // width)] += 1
        return counts

    def summary(self) -> str:
        return (
            f"{self.scheme}: mean {self.mean:.1f} / p90 {self.quantile(0.9)} / "
            f"peak {self.peak} of {self.capacity} stash slots, "
            f"{self.background_evictions} background evictions"
            + (f", {self.soft_overflows} soft overflows" if self.soft_overflows else "")
        )


def stash_occupancy_profile(
    trace: Trace,
    scheme: str,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.0,
) -> StashProfile:
    """Run ``trace`` under ``scheme`` and sample stash occupancy per access.

    Only ORAM-backed schemes have a stash; asking for ``dram`` raises.
    """
    config = config or experiment_config()
    system = SecureSystem.build(scheme, trace.footprint_blocks, config)
    backend = system.backend
    if not hasattr(backend, "oram"):
        raise ValueError(f"scheme '{scheme}' has no stash to profile")
    profile = StashProfile(scheme=scheme, capacity=backend.oram.stash.capacity)
    backend.stash_sampler = profile.samples.append
    result = system.run(trace, warmup_entries=int(len(trace) * warmup_fraction))
    profile.background_evictions = result.dummy_accesses
    profile.soft_overflows = backend.oram.stash_soft_overflows
    return profile


def compare_schemes(
    trace: Trace,
    schemes=("oram", "stat", "dyn"),
    config: Optional[SystemConfig] = None,
) -> List[StashProfile]:
    """Profiles for several schemes on one trace (same order as given)."""
    return [stash_occupancy_profile(trace, scheme, config=config) for scheme in schemes]
