"""ASCII rendering of the rows/series the benchmark harness prints.

The benchmarks regenerate every figure as a table of the same series the
paper plots; these helpers keep the output uniform and diff-able (they are
what lands in bench_output.txt and EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:+.3f}" if -10 < cell < 10 else f"{cell:.1f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Fixed-width table with a header rule."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(title: str, xs: Sequence[Cell], series: dict) -> str:
    """A titled table with one x column and one column per named series."""
    headers = ["x"] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return f"{title}\n{format_table(headers, rows)}"
