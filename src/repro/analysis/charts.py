"""ASCII bar charts: render figure series the way the paper plots them.

The benchmark harness records numeric tables; these helpers turn the same
series into horizontal bar charts for terminals, used by the examples and
the CLI so a reader can *see* the shapes (who wins, where the crossovers
are) without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

FULL = "#"
EMPTY = " "


def _scale(values: Sequence[float], width: int) -> float:
    biggest = max((abs(v) for v in values), default=0.0)
    return biggest / width if biggest > 0 else 1.0


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart with a zero axis (negative bars grow left).

    >>> print(bar_chart(["a", "b"], [0.2, -0.1], width=10))  # doctest: +SKIP
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    half = width // 2
    per_cell = _scale(values, half)
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        cells = int(round(abs(value) / per_cell)) if per_cell else 0
        cells = min(cells, half)
        if value >= 0:
            bar = EMPTY * half + "|" + FULL * cells + EMPTY * (half - cells)
        else:
            bar = EMPTY * (half - cells) + FULL * cells + "|" + EMPTY * half
        lines.append(f"{label.rjust(label_width)} {bar} {value:+.3f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """One bar row per (label, series) pair, grouped by label.

    Mirrors the paper's grouped bars (e.g. stat/dyn per benchmark).
    """
    flat: List[float] = [v for values in series.values() for v in values]
    half = width // 2
    per_cell = _scale(flat, half)
    name_width = max((len(name) for name in series), default=0)
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, label in enumerate(labels):
        for name, values in series.items():
            value = values[i]
            cells = int(round(abs(value) / per_cell)) if per_cell else 0
            cells = min(cells, half)
            if value >= 0:
                bar = EMPTY * half + "|" + FULL * cells + EMPTY * (half - cells)
            else:
                bar = EMPTY * (half - cells) + FULL * cells + "|" + EMPTY * half
            prefix = label.rjust(label_width) if name == next(iter(series)) else " " * label_width
            lines.append(f"{prefix} {name.rjust(name_width)} {bar} {value:+.3f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a series (used for stash-occupancy traces)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - low) / span * (len(glyphs) - 1)))]
        for v in values
    )
