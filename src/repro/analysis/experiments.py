"""Shared experiment driver.

Every figure in the paper compares several *schemes* on the same workload:
the insecure DRAM, the baseline ORAM, the static super block scheme, and
PrORAM's dynamic scheme (plus prefetching and periodic variants).  This
module runs one trace through any set of schemes on identical
configurations and computes the derived rows the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import ORAMConfig, SystemConfig
from repro.core.thresholds import ThresholdPolicy
from repro.sim.results import SimResult
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace


def experiment_config(
    bucket_size: int = 4,
    utilization: float = 0.65,
    **oram_overrides,
) -> SystemConfig:
    """The configuration the benchmark harness runs the paper's figures on.

    Table 1 lists Z=3 for the paper's 8 GB, ~26-level production tree.  Our
    functional tree is necessarily shallow (12-14 levels at Python scale),
    which halves the write-back percolation capacity; at Z=3 a shallow tree
    has almost no drain margin, so super block schemes drown in background
    evictions that the production geometry absorbs.  Z=4 restores the
    nominal drain margin (it is also what the paper's own synthetic studies
    use, section 5.3), and utilization 0.65 puts pair-eviction pressure in
    the regime the paper reports: a few percent of accesses, enough to
    punish blind merging but not to erase sequential gains.  EXPERIMENTS.md
    discusses the calibration.
    """
    return SystemConfig(
        oram=ORAMConfig(
            bucket_size=bucket_size, utilization=utilization, **oram_overrides
        )
    )


def run_schemes(
    trace: Trace,
    schemes: Sequence[str],
    config: Optional[SystemConfig] = None,
    *,
    policy_factory=None,
    static_sbsize: Optional[int] = None,
    warmup_fraction: float = 0.0,
    system_hook=None,
    build_kwargs=None,
) -> Dict[str, SimResult]:
    """Run one trace through each scheme on a fresh system.

    Args:
        trace: the workload (every scheme replays the same entries).
        schemes: scheme labels understood by :meth:`SecureSystem.build`.
        config: shared system configuration.
        policy_factory: zero-argument callable returning a fresh
            :class:`ThresholdPolicy` per dynamic-scheme system (policies
            hold windowed state and must not be shared between runs).
        static_sbsize: super block size for the static scheme.
        warmup_fraction: leading fraction of the trace simulated but not
            measured (steady-state comparison; see
            :meth:`SecureSystem.run`).
        system_hook: optional ``(scheme, system)`` callable invoked after
            each system is built and before it runs -- the CLI uses this to
            attach a :class:`repro.profiling.Profiler` per scheme.
        build_kwargs: extra keyword arguments for
            :meth:`SecureSystem.build` -- either a dict (shared by every
            scheme) or a ``scheme -> dict`` callable for per-system state
            such as a fresh :class:`repro.faults.FaultInjector` (injectors
            hold a private RNG stream and must not be shared between runs).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup fraction must be in [0, 1)")
    warmup_entries = int(len(trace) * warmup_fraction)
    results: Dict[str, SimResult] = {}
    for scheme in schemes:
        policy: Optional[ThresholdPolicy] = None
        if policy_factory is not None and scheme.startswith("dyn"):
            policy = policy_factory()
        if build_kwargs is None:
            extra_kwargs = {}
        elif callable(build_kwargs):
            extra_kwargs = build_kwargs(scheme) or {}
        else:
            extra_kwargs = dict(build_kwargs)
        system = SecureSystem.build(
            scheme,
            footprint_blocks=trace.footprint_blocks,
            config=config,
            policy=policy,
            static_sbsize=static_sbsize,
            **extra_kwargs,
        )
        if system_hook is not None:
            system_hook(scheme, system)
        results[scheme] = system.run(trace, warmup_entries=warmup_entries)
    return results


@dataclass
class ExperimentRow:
    """One workload's comparison against its baseline scheme."""

    workload: str
    baseline: str
    results: Dict[str, SimResult] = field(default_factory=dict)

    def speedup(self, scheme: str) -> float:
        return self.results[scheme].speedup_over(self.results[self.baseline])

    def normalized_accesses(self, scheme: str) -> float:
        return self.results[scheme].normalized_memory_accesses(self.results[self.baseline])

    def normalized_time(self, scheme: str) -> float:
        return self.results[scheme].normalized_completion_time(self.results[self.baseline])


def summarize(
    rows: Iterable[ExperimentRow], scheme: str, workloads: Optional[Sequence[str]] = None
) -> float:
    """Average speedup of a scheme over a set of workloads (``avg`` bars).

    The paper's suite averages (``avg`` and ``mem_avg`` in Figure 8) are
    arithmetic means of per-benchmark speedups.
    """
    selected: List[float] = []
    for row in rows:
        if workloads is not None and row.workload not in workloads:
            continue
        selected.append(row.speedup(scheme))
    if not selected:
        raise ValueError("no workloads selected for the summary")
    return sum(selected) / len(selected)
