"""Experiment harness: run scheme matrices, compute paper metrics, render tables."""

from repro.analysis.charts import bar_chart, grouped_bar_chart, sparkline
from repro.analysis.experiments import (
    ExperimentRow,
    experiment_config,
    run_schemes,
    summarize,
)
from repro.analysis.stash_study import StashProfile, stash_occupancy_profile
from repro.analysis.tables import format_series, format_table

__all__ = [
    "ExperimentRow",
    "StashProfile",
    "bar_chart",
    "experiment_config",
    "format_series",
    "format_table",
    "grouped_bar_chart",
    "run_schemes",
    "sparkline",
    "stash_occupancy_profile",
    "summarize",
]
