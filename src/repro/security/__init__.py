"""Obliviousness validation: the adversary's view and statistical tests."""

from repro.security.observer import AccessObserver
from repro.security.statistics import (
    chi_square_uniformity,
    lag_autocorrelation,
    sequences_indistinguishable,
)

__all__ = [
    "AccessObserver",
    "chi_square_uniformity",
    "lag_autocorrelation",
    "sequences_indistinguishable",
]
