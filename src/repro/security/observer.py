"""The curious adversary's viewpoint (paper section 2.1).

The adversary sees the *physical* access sequence: which path (leaf label)
each ORAM access touches, and when.  It never sees program addresses, block
contents (encrypted), or whether an access is real or dummy.  The observer
records exactly that view so the statistical tests in
:mod:`repro.security.statistics` can audit obliviousness and so timing
experiments can inspect the access schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ObservedAccess:
    """One adversary-visible event: a path access at some index/time."""

    leaf: int
    #: recorded only for the *auditor's* ground-truth assertions; a real
    #: adversary cannot distinguish kinds, and the statistical tests must
    #: hold with kinds removed.
    kind: str = "real"


@dataclass
class AccessObserver:
    """Records the leaf label of every path access."""

    accesses: List[ObservedAccess] = field(default_factory=list)

    def on_path_access(self, leaf: int, kind: str = "real") -> None:
        self.accesses.append(ObservedAccess(leaf, kind))

    def leaves(self) -> List[int]:
        """The raw leaf sequence (what the adversary actually has)."""
        return [access.leaf for access in self.accesses]

    def __len__(self) -> int:
        return len(self.accesses)

    def clear(self) -> None:
        self.accesses.clear()
