"""Statistical indistinguishability tests (paper sections 2.1 and 4.6).

ORAM's guarantee: for any two logical access sequences of the same length,
the physical sequences are computationally indistinguishable.  For a Path
ORAM (with or without super blocks) the observable is the leaf sequence,
which must be (a) uniform over leaves and (b) unlinkable -- independent of
both earlier accesses and the logical addresses.

These tests are necessarily statistical, not cryptographic proofs; they are
the standard sanity harness for an ORAM implementation and they catch real
bugs (e.g. forgetting to remap a super block member would skew uniformity
and create leaf repeats).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from scipy import stats as scipy_stats

#: Returned by the chi-squared helpers when the sample is too small to
#: test (empty sequences, or bin coarsening collapses below two bins).
#: Statistic 0 / p-value 1 means "no evidence against the null" -- the
#: correct neutral answer for a test that could not run -- and keeps
#: live monitors (``repro.observability.uniformity``) working during
#: warm-up without special-casing short windows.
INSUFFICIENT_DATA: Tuple[float, float] = (0.0, 1.0)


def chi_square_uniformity(
    leaves: Sequence[int], num_leaves: int, min_expected: float = 5.0
) -> Tuple[float, float]:
    """Chi-squared goodness-of-fit of the leaf histogram against uniform.

    Bins are coarsened (by grouping adjacent leaves) until the expected
    count per bin reaches ``min_expected``, the standard validity condition.

    Returns:
        (statistic, p_value); a healthy ORAM gives a p-value that is not
        tiny (the tests assert p > 1e-4 to keep flakiness negligible).
        Sequences too short to test return :data:`INSUFFICIENT_DATA`
        rather than raising: the coarsening loop would otherwise collapse
        to a single bin, and a one-bin chi-squared has zero degrees of
        freedom (scipy divides by it).
    """
    if not leaves:
        return INSUFFICIENT_DATA
    bins = num_leaves
    shift = 0
    while bins > 1 and len(leaves) / bins < min_expected:
        bins //= 2
        shift += 1
    if bins < 2:
        return INSUFFICIENT_DATA
    counts = Counter(leaf >> shift for leaf in leaves)
    observed = [counts.get(i, 0) for i in range(bins)]
    statistic, p_value = scipy_stats.chisquare(observed)
    return float(statistic), float(p_value)


def lag_autocorrelation(leaves: Sequence[int], lag: int = 1) -> float:
    """Pearson autocorrelation of the leaf sequence at the given lag.

    Unlinkability implies this should be ~0: knowing the current path tells
    the adversary nothing about the next one.
    """
    if len(leaves) <= lag + 1:
        raise ValueError("sequence too short for the requested lag")
    import numpy as np

    x = np.asarray(leaves[:-lag], dtype=float)
    y = np.asarray(leaves[lag:], dtype=float)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def sequences_indistinguishable(
    leaves_a: Sequence[int],
    leaves_b: Sequence[int],
    num_leaves: int,
    min_expected: float = 5.0,
) -> Tuple[float, float]:
    """Chi-squared homogeneity test between two observed leaf sequences.

    This is the operational form of the ORAM definition: run two different
    *logical* workloads and check the adversary cannot tell the physical
    sequences apart.  Returns (statistic, p_value); indistinguishable
    sequences give a non-tiny p-value.  Sequences too short to bin (or
    empty) return :data:`INSUFFICIENT_DATA` -- see
    :func:`chi_square_uniformity`.
    """
    if not leaves_a or not leaves_b:
        return INSUFFICIENT_DATA
    bins = num_leaves
    shift = 0
    smallest = min(len(leaves_a), len(leaves_b))
    while bins > 1 and smallest / bins < min_expected:
        bins //= 2
        shift += 1
    if bins < 2:
        return INSUFFICIENT_DATA
    count_a = Counter(leaf >> shift for leaf in leaves_a)
    count_b = Counter(leaf >> shift for leaf in leaves_b)
    table = [
        [count_a.get(i, 0) for i in range(bins)],
        [count_b.get(i, 0) for i in range(bins)],
    ]
    # Drop bins empty in both rows (chi2_contingency rejects zero columns).
    cols = [
        [row[i] for row in table]
        for i in range(bins)
        if table[0][i] + table[1][i] > 0
    ]
    if len(cols) < 2:
        return INSUFFICIENT_DATA
    contingency = [[col[0] for col in cols], [col[1] for col in cols]]
    statistic, p_value, _, _ = scipy_stats.chi2_contingency(contingency)
    return float(statistic), float(p_value)


def leaf_histogram(leaves: Sequence[int], num_leaves: int) -> List[int]:
    """Raw per-leaf access counts (plot/debug helper)."""
    counts = Counter(leaves)
    return [counts.get(i, 0) for i in range(num_leaves)]
