"""Consistency checker for an ORAM instance (the recovery ladder's auditor).

``fsck`` for an oblivious store: walks the position map, the tree, and the
stash, and accumulates every violation of the Path ORAM invariants into a
:class:`FsckReport` instead of dying on the first assert (the point of a
recovery audit is a complete picture).  For Merkle-verified ORAMs it also
recomputes the whole hash tree from the bucket contents and compares the
fresh root against the trusted on-chip root -- the rollback adversary's
last hiding place.

The resilient access path runs this after every checkpoint restore and
before every checkpoint capture; tests use it to prove recovery really
reconverged rather than merely stopped raising.

:func:`run_fsck` dispatches on the store's shape: Path ORAM instances
(anything with ``tree``/``position_map``/``stash``) get the deep
bucket-by-bucket audit below; every other
:class:`~repro.controller.scheme.ORAMScheme` implementation (Ring ORAM,
the Shi tree ORAM, the square-root ORAM) is audited through its own
``check_invariants`` with violations folded into the same
:class:`FsckReport`.  :func:`run_fsck_bank` audits every channel of a
:class:`~repro.controller.sharded.ShardedORAMBank`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class FsckError(RuntimeError):
    """The post-recovery audit found the store inconsistent."""

    def __init__(self, report: "FsckReport"):
        super().__init__(report.summary())
        self.report = report


@dataclass
class FsckReport:
    """Outcome of one consistency audit."""

    blocks_in_tree: int = 0
    blocks_in_stash: int = 0
    expected_blocks: int = 0
    root_hash_checked: bool = False
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        verdict = "clean" if self.ok else f"{len(self.errors)} error(s)"
        lines = [
            f"fsck: {verdict} -- {self.blocks_in_tree} blocks in tree, "
            f"{self.blocks_in_stash} in stash, {self.expected_blocks} expected"
            + (", root hash verified" if self.root_hash_checked else "")
        ]
        lines.extend(f"  - {error}" for error in self.errors)
        return "\n".join(lines)


def run_fsck(oram, max_errors: int = 16) -> FsckReport:
    """Audit an oblivious store and report every violation found.

    Path ORAM instances get the deep audit of
    :func:`_fsck_path_oram`; any other scheme implementing the
    ``ORAMScheme`` protocol is audited via :func:`_fsck_scheme` (its own
    ``check_invariants`` plus an on-chip census).
    """
    if (
        hasattr(oram, "tree")
        and hasattr(oram, "position_map")
        and hasattr(oram, "stash")
    ):
        return _fsck_path_oram(oram, max_errors)
    return _fsck_scheme(oram, max_errors)


def _fsck_path_oram(oram, max_errors: int = 16) -> FsckReport:
    """Audit posmap<->tree<->stash consistency and root-hash agreement.

    Checks, in order:

    * every bucket holds at most ``Z`` blocks;
    * every block appears exactly once across tree + stash;
    * every block's leaf field matches its position map entry;
    * every tree-resident block sits on the path of its mapped leaf;
    * every position-map address resolves to exactly one location
      (missing addresses are reported by name, not just as a census
      delta);
    * for Merkle-verified ORAMs: a from-scratch recomputation of the hash
      tree reproduces the trusted root.

    One address -> location index is built in a single tree walk and
    reused by every later check: the audit is O(B) in the total block
    count.  (An earlier revision re-scanned the tree per address --
    ``ORAMTree.find()`` style O(N * B) -- which made post-recovery audits
    of large shards the slowest step of the recovery ladder.)

    Error accumulation stops at ``max_errors`` (a badly mangled tree would
    otherwise produce one error per block).
    """
    report = FsckReport(expected_blocks=oram.position_map.num_blocks)
    errors = report.errors

    def record(message: str) -> bool:
        if len(errors) < max_errors:
            errors.append(message)
        return len(errors) >= max_errors

    tree = oram.tree
    posmap = oram.position_map
    z = oram.config.bucket_size
    # Pass 1 -- the only full tree walk: bucket bounds, duplicate
    # detection, and the address -> (location, block) index every
    # subsequent check reuses.
    seen: Dict[int, str] = {}
    located: Dict[int, tuple] = {}  # addr -> (bucket index | None, block)
    for index in range(tree.num_buckets):
        bucket = tree.bucket(index)
        if len(bucket) > z:
            if record(f"bucket {index} holds {len(bucket)} blocks > Z={z}"):
                return report
        for block in bucket:
            report.blocks_in_tree += 1
            if not 0 <= block.addr < report.expected_blocks:
                if record(f"bucket {index}: block address {block.addr} out of range"):
                    return report
                continue
            if block.addr in seen:
                if record(
                    f"block {block.addr} duplicated (tree bucket {index} "
                    f"and {seen[block.addr]})"
                ):
                    return report
                continue
            seen[block.addr] = f"tree bucket {index}"
            located[block.addr] = (index, block)
    for addr, block in oram.stash.items():
        report.blocks_in_stash += 1
        if addr in seen:
            if record(f"block {addr} in both stash and {seen[addr]}"):
                return report
            continue
        seen[addr] = "stash"
        located[addr] = (None, block)
    # Pass 2 -- per-address invariants, all answered from the index (dict
    # lookups, no tree scans): presence, leaf agreement, path placement.
    for addr in range(report.expected_blocks):
        location = located.get(addr)
        if location is None:
            if record(f"block {addr} missing from both tree and stash"):
                return report
            continue
        index, block = location
        mapped = posmap.leaf(addr)
        if block.leaf != mapped:
            where = "stash" if index is None else f"tree bucket {index}"
            if record(
                f"block {addr} ({where}): copy leaf {block.leaf} != "
                f"posmap leaf {mapped}"
            ):
                return report
        if index is not None:
            level = (index + 1).bit_length() - 1
            if tree.bucket_index(level, mapped) != index:
                if record(
                    f"block {addr} (leaf {mapped}) off-path at bucket {index}"
                ):
                    return report
    if len(seen) != report.expected_blocks:
        record(
            f"block census mismatch: {len(seen)} distinct blocks found, "
            f"{report.expected_blocks} expected"
        )
    merkle = getattr(oram, "merkle", None)
    if merkle is not None:
        # Recompute the whole hash tree from scratch and compare roots:
        # agreement proves the bucket contents are exactly what the trusted
        # root commits to (no stale image survived recovery).
        from repro.oram.integrity import MerkleTree

        fresh_root = MerkleTree(tree).root
        report.root_hash_checked = True
        if fresh_root != merkle.root:
            record(
                "root hash disagreement: recomputed root does not match the "
                "trusted on-chip root"
            )
    return report


def _fsck_scheme(oram, max_errors: int = 16) -> FsckReport:
    """Generic audit for any ``ORAMScheme`` without Path ORAM internals.

    Runs the scheme's own :meth:`check_invariants` (structural audit:
    path invariant, bucket bounds, block conservation, permutation
    bijectivity -- whatever the construction guarantees) and folds the
    first violation into the report, then records the on-chip census.
    """
    expected = getattr(oram, "num_blocks", 0)
    report = FsckReport(expected_blocks=expected)
    try:
        oram.check_invariants()
    except AssertionError as exc:
        report.errors.append(
            f"{type(oram).__name__}.check_invariants: {exc or 'invariant violated'}"
        )
    on_chip = getattr(oram, "stash_occupancy", 0)
    report.blocks_in_stash = on_chip
    if report.ok:
        report.blocks_in_tree = expected - on_chip
    return report


def run_fsck_bank(bank, max_errors: int = 16) -> FsckReport:
    """Audit every channel of a sharded ORAM bank into one merged report.

    Each shard's functional ORAM gets a full :func:`run_fsck`; errors are
    prefixed with the shard index, censuses are summed, and the merged
    ``root_hash_checked`` is true only when every audited shard checked
    one.
    """
    shards = bank.shards
    merged = FsckReport(root_hash_checked=bool(shards))
    for index, shard in enumerate(shards):
        report = run_fsck(shard.oram, max_errors=max_errors)
        merged.blocks_in_tree += report.blocks_in_tree
        merged.blocks_in_stash += report.blocks_in_stash
        merged.expected_blocks += report.expected_blocks
        merged.root_hash_checked = merged.root_hash_checked and report.root_hash_checked
        for error in report.errors:
            if len(merged.errors) < max_errors:
                merged.errors.append(f"shard {index}: {error}")
    return merged


def assert_consistent(oram, max_errors: int = 16) -> FsckReport:
    """Run :func:`run_fsck` and raise :class:`FsckError` on any finding."""
    report = run_fsck(oram, max_errors=max_errors)
    if not report.ok:
        raise FsckError(report)
    return report
