"""Chaos harness: seed-deterministic multi-fault storms, cross-layer.

The resilience stack has three enforcement layers, and no single fault
class exercises all of them: bit-flips and stale-bucket replays act at
the Merkle-verified path-read layer (the :class:`~repro.faults.resilient.
ResilientKVStore` ladder), worker kills and hangs act at the process
boundary (the :class:`~repro.parallel.runtime.ParallelShardRuntime`
health plane), and transient/delay faults act at the memory-timing layer
(the in-process :class:`~repro.controller.sharded.ShardedORAMBank`
breakers).  A chaos *scenario* therefore composes one storm per layer
from a single seed, and the combined report gates the three invariants
the ROADMAP's production target promises:

* **zero lost writes** -- every KV read matches its shadow, and the
  parallel merge conserves every demand request through kills, hangs,
  quarantines, and fallback routing;
* **bounded recovery** -- a hung worker is detected within the
  configured heartbeat deadline (the failure mode that used to deadlock
  the front-end's reply poll forever) and every quarantined shard is
  re-admitted through the half-open probe path;
* **shape preservation** -- the leaf-uniformity chi-squared gate holds
  while shards bounce between HEALTHY / DEGRADED / QUARANTINED /
  PROBING, because fallback and probe traffic is padded with dummy-path
  accesses instead of changing shape.

Scenario grammar (DESIGN.md section 10): a :class:`ChaosScenario` is a
frozen value -- per-layer op counts, fault rates, and a tuple of
:class:`ChaosEvent` marks ``(at_op, action, shard)`` with actions
``kill`` / ``hang`` / ``quarantine``.  Everything downstream of the seed
is deterministic except wall-clock (kills and hangs race the scheduler,
so *which batch* dies varies; the invariants above hold regardless --
that is the point of the harness).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import ORAMConfig, SystemConfig
from repro.faults.fsck import run_fsck
from repro.faults.injector import FaultConfig, FaultInjector
from repro.health import HealthPolicy, HealthState
from repro.utils.rng import DeterministicRng

_ACTIONS = ("kill", "hang", "quarantine")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled disturbance inside a storm.

    ``kill`` terminates a worker process, ``hang`` stalls its command
    loop (detectable only through deadline enforcement), ``quarantine``
    trips an in-process bank breaker directly (the operator hook).  The
    parallel storm honours kill/hang; the bank storm maps every action
    onto ``quarantine`` since banks have no processes to kill.
    """

    at_op: int
    action: str
    shard: int
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.at_op < 0 or self.shard < 0:
            raise ValueError("at_op and shard must be non-negative")


def default_storm(ops: int, num_shards: int) -> Tuple[ChaosEvent, ...]:
    """The canonical kill + hang + kill storm, scaled to the stream."""
    return (
        ChaosEvent(ops // 4, "kill", 0 % num_shards),
        ChaosEvent(ops // 2, "hang", 1 % num_shards),
        ChaosEvent((5 * ops) // 8, "kill", 2 % num_shards),
    )


def chaos_policy() -> HealthPolicy:
    """Health policy tuned for storm tests: tight deadlines, short
    cooldowns, so quarantine -> probe -> re-admit cycles complete inside
    a few thousand accesses instead of a production-sized window."""
    return HealthPolicy(
        window=32,
        quarantine_cooldown=16,
        probe_batch=8,
        probe_successes=2,
        heartbeat_every=8,
        batch_deadline_s=1.5,
        join_timeout_s=2.0,
    )


@dataclass(frozen=True)
class ChaosScenario:
    """One composed, seed-deterministic multi-fault storm."""

    name: str = "storm"
    seed: int = 11
    scheme: str = "dyn"
    num_shards: int = 4
    footprint_blocks: int = 256
    parallel_ops: int = 8_000
    kv_ops: int = 4_000
    bank_ops: int = 8_000
    write_percent: int = 50
    transient_rate: float = 0.02
    delay_rate: float = 0.01
    bitflip_rate: float = 0.004
    replay_rate: float = 0.002
    delay_cycles: int = 200
    start_after: int = 64
    batch_size: int = 16
    max_inflight: int = 2
    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        if min(self.parallel_ops, self.kv_ops, self.bank_ops) < 0:
            raise ValueError("op counts must be non-negative")
        if self.num_shards < 2:
            raise ValueError("a storm needs at least two shards")

    @property
    def total_ops(self) -> int:
        return self.parallel_ops + self.kv_ops + self.bank_ops

    def storm_events(self, ops: int) -> Tuple[ChaosEvent, ...]:
        """The event schedule scaled onto a stream of *ops* requests."""
        events = self.events or default_storm(self.parallel_ops, self.num_shards)
        reference = max(self.parallel_ops, 1)
        return tuple(
            ChaosEvent(
                min(event.at_op * ops // reference, max(ops - 1, 0)),
                event.action,
                event.shard % self.num_shards,
                event.seconds,
            )
            for event in events
            if ops > 0
        )

    def requests(self, ops: int, salt: int) -> List[Tuple[int, int, bool]]:
        """A seeded ``(addr, now, is_write)`` stream for one layer."""
        rng = DeterministicRng(self.seed).fork(salt)
        return [
            (
                rng.randbelow(self.footprint_blocks),
                index * 3,
                rng.randbelow(100) < self.write_percent,
            )
            for index in range(ops)
        ]


# ---------------------------------------------------------------- KV storm
def run_kv_storm(scenario: ChaosScenario) -> Dict:
    """Bit-flip / replay / transient / delay storm on the resilient store.

    Every read is checked against a shadow dict as it happens and a final
    sweep re-reads every acknowledged key: *zero lost writes* is literal.
    """
    from repro.faults.resilient import ResilienceConfig, ResilientKVStore

    config = ORAMConfig(levels=6, bucket_size=4, stash_blocks=60, utilization=0.5)
    store = ResilientKVStore(
        config,
        fault_config=FaultConfig(
            seed=scenario.seed + 1,
            bitflip_rate=scenario.bitflip_rate,
            replay_rate=scenario.replay_rate,
            transient_rate=scenario.transient_rate,
            delay_rate=scenario.delay_rate,
            delay_cycles=scenario.delay_cycles,
            start_after=scenario.start_after,
        ),
        resilience=ResilienceConfig(checkpoint_interval=128),
        seed=scenario.seed,
    )
    rng = DeterministicRng(scenario.seed).fork(0xC4A0)
    shadow: Dict[int, bytes] = {}
    mismatches = 0
    begin = time.perf_counter()
    for index in range(scenario.kv_ops):
        key = rng.randbelow(store.capacity)
        op = rng.randbelow(100)
        if op < 55:
            value = bytes([index % 251]) * (1 + rng.randbelow(8))
            store.put(key, value)
            shadow[key] = value
        elif op < 95:
            if store.get(key) != shadow.get(key):
                mismatches += 1
        else:
            store.delete(key)
            shadow.pop(key, None)
    for key, value in shadow.items():
        if store.get(key) != value:
            mismatches += 1
    audit = run_fsck(store.oram)
    return {
        "ops": scenario.kv_ops,
        "elapsed_s": time.perf_counter() - begin,
        "mismatches": mismatches,
        "live_keys": len(shadow),
        "faults_injected": store.fault_stats.total_injected,
        "retries": store.recovery.retries,
        "recoveries": store.recovery.recoveries,
        "fsck_clean": audit.ok,
        "zero_lost": mismatches == 0 and audit.ok,
    }


# ---------------------------------------------------------- parallel storm
def run_parallel_storm(
    scenario: ChaosScenario,
    policy: Optional[HealthPolicy] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict:
    """Kill + hang + transient/delay storm on the process-parallel runtime.

    The request stream is cut at every event mark; events fire between
    segments (a kill terminates the worker, a hang stalls it), and the
    following segment must flow through detection, quarantine, fallback
    routing, and probe re-admission.  Worker stats are cumulative across
    segments, so the final merged result's ``demand_requests`` equals the
    whole stream length exactly when no access was lost or double-counted.
    """
    from repro.parallel.runtime import ParallelShardRuntime

    policy = policy or chaos_policy()
    requests = scenario.requests(scenario.parallel_ops, salt=0x9A11)
    events = [
        event
        for event in scenario.storm_events(len(requests))
        if event.action in ("kill", "hang")
    ]
    marks = sorted({event.at_op for event in events if 0 < event.at_op < len(requests)})
    bounds = [0] + marks + [len(requests)]
    fired: List[str] = []
    segment_times: List[float] = []
    hang_segment_s = 0.0
    begin = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        with ParallelShardRuntime(
            scenario.scheme,
            scenario.footprint_blocks,
            SystemConfig(seed=scenario.seed),
            scenario.num_shards,
            checkpoint_dir=checkpoint_dir or scratch,
            batch_size=scenario.batch_size,
            max_inflight=scenario.max_inflight,
            max_restarts=4 * max(len(events), 1) + 2,
            health_policy=policy,
            fault_config=FaultConfig(
                seed=scenario.seed + 2,
                transient_rate=scenario.transient_rate,
                delay_rate=scenario.delay_rate,
                delay_cycles=scenario.delay_cycles,
                start_after=scenario.start_after,
            ),
        ) as runtime:
            result = None
            for start, end in zip(bounds, bounds[1:]):
                segment_hangs = False
                for event in events:
                    if event.at_op != start:
                        continue
                    if event.action == "kill":
                        runtime.kill_worker(event.shard)
                    else:
                        runtime.hang_worker(event.shard, event.seconds)
                        segment_hangs = True
                    fired.append(f"{event.action}@{start}:shard{event.shard}")
                final = end == len(requests)
                segment_begin = time.perf_counter()
                result = runtime.run(requests[start:end], fsck=final)
                segment_s = time.perf_counter() - segment_begin
                segment_times.append(segment_s)
                if segment_hangs:
                    hang_segment_s = max(hang_segment_s, segment_s)
            health = runtime.health
            states = [health.state(i).value for i in range(scenario.num_shards)]
            report = {
                "ops": len(requests),
                "elapsed_s": time.perf_counter() - begin,
                "events": fired,
                "demand_requests": result.demand_requests if result else 0,
                "conserved": bool(result) and result.demand_requests == len(requests),
                "hangs": runtime.total_hangs(),
                "restarts": runtime.worker_restarts(),
                "quarantines": health.total_quarantines(),
                "readmissions": health.total_readmissions(),
                "final_states": states,
                "all_readmitted": not health.quarantined()
                and all(s != HealthState.PROBING.value for s in states),
                "hang_segment_s": hang_segment_s,
                "segment_s": segment_times,
            }
    expected_hangs = sum(1 for event in events if event.action == "hang")
    report["hangs_detected"] = report["hangs"] >= expected_hangs
    # Bounded recovery: a hang segment may legitimately pay the deadline
    # plus process teardown/respawn, but never the old unbounded poll.
    report["recovery_bounded"] = (
        expected_hangs == 0
        or hang_segment_s <= policy.batch_deadline_s + 10 * policy.join_timeout_s + 30
    )
    return report


# -------------------------------------------------------------- bank storm
def run_bank_storm(
    scenario: ChaosScenario, policy: Optional[HealthPolicy] = None
) -> Dict:
    """Transient/delay storm + forced quarantines on the in-process bank.

    A :class:`~repro.observability.LeafUniformityMonitor` watches every
    path access the whole time: the chi-squared gate must hold through
    DEGRADED throttling, quarantine fallback padding, and probing.
    """
    from repro.observability import LeafUniformityMonitor
    from repro.sim.system import SecureSystem

    policy = policy or chaos_policy()
    config = SystemConfig(seed=scenario.seed)
    per_shard = (
        scenario.footprint_blocks + scenario.num_shards - 1
    ) // scenario.num_shards
    monitor = LeafUniformityMonitor(
        config.oram.scaled_to_footprint(per_shard).num_leaves, window=1024
    )
    # Storm-level transient rate: high enough to trip DEGRADED windows
    # (rate > degrade_failure_rate) without reaching the quarantine storm
    # threshold -- forced quarantines come from the events instead.
    system = SecureSystem.build(
        scenario.scheme,
        scenario.footprint_blocks,
        config,
        observer=monitor,
        fault_injector=FaultInjector(
            FaultConfig(
                seed=scenario.seed + 3,
                transient_rate=min(4 * scenario.transient_rate, 0.2),
                delay_rate=scenario.delay_rate,
                delay_cycles=scenario.delay_cycles,
                start_after=scenario.start_after,
            )
        ),
        num_shards=scenario.num_shards,
        health_policy=policy,
    )
    bank = system.backend
    requests = scenario.requests(scenario.bank_ops, salt=0xBA0C)
    trips = {
        event.at_op: event.shard for event in scenario.storm_events(len(requests))
    }
    begin = time.perf_counter()
    for index, (addr, now, is_write) in enumerate(requests):
        shard = trips.get(index)
        if shard is not None and bank.health.state(shard) not in (
            HealthState.QUARANTINED,
            HealthState.PROBING,
        ):
            bank.quarantine_shard(shard, reason="chaos")
        bank.demand_access(addr, now, is_write)
    monitor.flush()
    health = bank.health
    states = [health.state(i).value for i in range(scenario.num_shards)]
    flagged = len(monitor.flagged)
    return {
        "ops": len(requests),
        "elapsed_s": time.perf_counter() - begin,
        "quarantines": health.total_quarantines(),
        "readmissions": health.total_readmissions(),
        "transitions": health.total_transitions(),
        "final_states": states,
        "all_readmitted": not health.quarantined()
        and all(s != HealthState.PROBING.value for s in states),
        "uniformity_windows": len(monitor.checks),
        "uniformity_flagged": flagged,
        "leaf_uniform": monitor.healthy,
    }


# ----------------------------------------------------------------- compose
@dataclass
class ChaosReport:
    """The combined verdict of one cross-layer storm."""

    scenario: ChaosScenario
    kv: Dict = field(default_factory=dict)
    parallel: Dict = field(default_factory=dict)
    bank: Dict = field(default_factory=dict)

    @property
    def zero_lost(self) -> bool:
        return bool(self.kv.get("zero_lost", True)) and bool(
            self.parallel.get("conserved", True)
        )

    @property
    def all_readmitted(self) -> bool:
        return bool(self.parallel.get("all_readmitted", True)) and bool(
            self.bank.get("all_readmitted", True)
        )

    @property
    def leaf_uniform(self) -> bool:
        return bool(self.bank.get("leaf_uniform", True))

    @property
    def hangs_detected(self) -> bool:
        return bool(self.parallel.get("hangs_detected", True)) and bool(
            self.parallel.get("recovery_bounded", True)
        )

    @property
    def ok(self) -> bool:
        return (
            self.zero_lost
            and self.all_readmitted
            and self.leaf_uniform
            and self.hangs_detected
        )

    def as_dict(self) -> Dict:
        return {
            "scenario": asdict(self.scenario),
            "kv": self.kv,
            "parallel": self.parallel,
            "bank": self.bank,
            "gates": {
                "zero_lost": self.zero_lost,
                "all_readmitted": self.all_readmitted,
                "leaf_uniform": self.leaf_uniform,
                "hangs_detected": self.hangs_detected,
            },
            "pass": self.ok,
        }

    def render(self) -> str:
        gate = lambda flag: "PASS" if flag else "FAIL"  # noqa: E731
        lines = [
            f"chaos storm '{self.scenario.name}' "
            f"(seed {self.scenario.seed}, {self.scenario.num_shards} shards, "
            f"{self.scenario.total_ops} total ops)"
        ]
        if self.kv:
            lines.append(
                f"  kv layer: {self.kv['ops']} ops, "
                f"{self.kv['faults_injected']} faults, "
                f"{self.kv['retries']} retries, "
                f"{self.kv['recoveries']} recoveries, "
                f"{self.kv['mismatches']} mismatches"
            )
        if self.parallel:
            lines.append(
                f"  parallel layer: {self.parallel['ops']} ops, "
                f"events {self.parallel['events']}, "
                f"{self.parallel['hangs']} hangs, "
                f"{self.parallel['quarantines']} quarantines, "
                f"{self.parallel['readmissions']} re-admissions, "
                f"states {self.parallel['final_states']}"
            )
        if self.bank:
            lines.append(
                f"  bank layer: {self.bank['ops']} ops, "
                f"{self.bank['quarantines']} quarantines, "
                f"{self.bank['readmissions']} re-admissions, "
                f"{self.bank['uniformity_flagged']}/"
                f"{self.bank['uniformity_windows']} uniformity windows flagged"
            )
        lines.append(
            f"  gates: zero_lost={gate(self.zero_lost)} "
            f"all_readmitted={gate(self.all_readmitted)} "
            f"leaf_uniform={gate(self.leaf_uniform)} "
            f"hang_detection={gate(self.hangs_detected)}"
        )
        lines.append(f"  verdict: {gate(self.ok)}")
        return "\n".join(lines)


def run_chaos(
    scenario: Optional[ChaosScenario] = None,
    policy: Optional[HealthPolicy] = None,
    layers: Tuple[str, ...] = ("kv", "parallel", "bank"),
) -> ChaosReport:
    """Run one composed storm; each named layer gets its own sub-storm."""
    scenario = scenario or ChaosScenario()
    unknown = set(layers) - {"kv", "parallel", "bank"}
    if unknown:
        raise ValueError(f"unknown chaos layers: {sorted(unknown)}")
    report = ChaosReport(scenario)
    if "kv" in layers and scenario.kv_ops:
        report.kv = run_kv_storm(scenario)
    if "parallel" in layers and scenario.parallel_ops:
        report.parallel = run_parallel_storm(scenario, policy)
    if "bank" in layers and scenario.bank_ops:
        report.bank = run_bank_storm(scenario, policy)
    return report
