"""Deterministic fault injection for the ORAM's untrusted storage.

The paper's target platforms (Ascend/Aegis-class secure processors,
sections 2.1-2.3) place the ORAM tree in *untrusted* external memory: a
realistic deployment must assume bits rot, DIMMs stall, and an active
adversary can replay stale bucket images.  This module simulates exactly
that adversary/environment, deterministically: a :class:`FaultInjector`
wraps the storage an ORAM reads (the :class:`~repro.oram.tree.BinaryTree`
bucket array for the functional store, the abstract memory channel for the
timing backends) and injects four fault classes at configured rates:

* **bucket bit-flips** -- one bit of one real block on the accessed path is
  flipped (payload if present, else the leaf label).  Detected by the
  Merkle layer on the very next path verification.
* **stale-bucket replay** -- a previously snapshotted bucket image is
  written back over the live bucket (the classic rollback adversary).
  Also caught by the Merkle layer: the stored hashes have moved on.
* **transient read failures** -- the read raises
  :class:`TransientReadError` without corrupting anything (a timed-out
  DRAM burst / link CRC error).  The resilient access path retries these.
* **delayed responses** -- the read completes but late; the injector
  returns the extra cycles so timing backends can charge them.

Every decision is drawn from a private :class:`DeterministicRng`, so the
same :class:`FaultConfig` against the same access sequence produces the
same fault schedule, byte for byte -- the soak benchmark and the recovery
tests rely on this.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.oram.block import Block
from repro.utils.rng import DeterministicRng


class TransientReadError(RuntimeError):
    """A storage read failed transiently; the access may be retried."""


@dataclass(frozen=True)
class FaultConfig:
    """Rates and parameters of the injected fault classes.

    All rates are per *path access* (functional ORAM) or per *memory
    access* (timing backend) probabilities in ``[0, 1]``.

    Attributes:
        seed: seed of the injector's private random stream.
        bitflip_rate: probability of flipping one bit of one real block on
            the accessed path.
        replay_rate: probability of rewinding one accessed-path bucket to a
            previously snapshotted stale image.
        transient_rate: probability the read raises
            :class:`TransientReadError` instead of completing.
        delay_rate: probability the read is delayed by ``delay_cycles``.
        delay_cycles: extra latency charged for a delayed response.
        start_after: number of leading accesses exempt from injection
            (lets a workload warm up before the faults begin).
    """

    seed: int = 0
    bitflip_rate: float = 0.0
    replay_rate: float = 0.0
    transient_rate: float = 0.0
    delay_rate: float = 0.0
    delay_cycles: int = 200
    start_after: int = 0

    def __post_init__(self) -> None:
        for name in ("bitflip_rate", "replay_rate", "transient_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_cycles < 0:
            raise ValueError("delay_cycles must be >= 0")

    @property
    def any_enabled(self) -> bool:
        """Whether any fault class has a nonzero rate."""
        return bool(
            self.bitflip_rate
            or self.replay_rate
            or self.transient_rate
            or self.delay_rate
        )


@dataclass
class FaultStats:
    """Counters of everything the injector actually did."""

    path_reads: int = 0
    memory_accesses: int = 0
    bitflips: int = 0
    replays: int = 0
    transients: int = 0
    delays: int = 0
    delay_cycles: int = 0
    snapshots: int = 0

    @property
    def total_injected(self) -> int:
        """Faults that actually perturbed an access."""
        return self.bitflips + self.replays + self.transients + self.delays

    def as_dict(self) -> Dict[str, int]:
        return {
            "path_reads": self.path_reads,
            "memory_accesses": self.memory_accesses,
            "bitflips": self.bitflips,
            "replays": self.replays,
            "transients": self.transients,
            "delays": self.delays,
            "delay_cycles": self.delay_cycles,
            "snapshots": self.snapshots,
            "total_injected": self.total_injected,
        }


#: serialized image of one bucket: ((addr, leaf, data), ...)
_BucketImage = Tuple[Tuple[int, int, bytes], ...]


def _bucket_image(bucket: List[Block]) -> _BucketImage:
    return tuple((b.addr, b.leaf, b.data or b"") for b in bucket)


class FaultInjector:
    """Seed-driven fault source for untrusted ORAM storage.

    Two entry points serve the two storage layers:

    * :meth:`on_path_read` -- called by the Merkle-verified functional ORAM
      immediately *before* a path is verified and read into the stash.  It
      may corrupt accessed-path buckets (bit-flip, replay), raise a
      transient failure, or report a delay.  Corruptions are restricted to
      the path about to be verified, so detection is immediate -- exactly
      the adversary the Merkle layer is built to catch.
    * :meth:`on_memory_access` -- called by timing backends that have no
      block-level storage to corrupt; only the transient and delay classes
      apply.

    The injector can be :meth:`paused` (recovery reads the sealed
    checkpoint store, which the fault model does not cover).
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.rng = DeterministicRng(config.seed)
        self.stats = FaultStats()
        self.enabled = True
        #: stale bucket images keyed by heap index, for the replay class
        self._snapshots: Dict[int, _BucketImage] = {}

    # ------------------------------------------------------------- control
    @contextmanager
    def paused(self) -> Iterator["FaultInjector"]:
        """Suspend injection (e.g. while recovery replays the journal)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous

    # ------------------------------------------------------------- entries
    def on_path_read(self, tree, leaf: int) -> int:
        """Possibly perturb the path about to be read; return delay cycles.

        Raises:
            TransientReadError: when the transient class fires (nothing is
                corrupted; the caller may retry the access).
        """
        stats = self.stats
        stats.path_reads += 1
        config = self.config
        if not self.enabled or not config.any_enabled:
            return 0
        if stats.path_reads <= config.start_after:
            return 0
        # Draw every class decision up front, in a fixed order, so the
        # random stream (and therefore the schedule) is a pure function of
        # the seed and the access sequence.
        rng = self.rng
        u_transient = rng.random()
        u_bitflip = rng.random()
        u_replay = rng.random()
        u_delay = rng.random()
        if u_transient < config.transient_rate:
            stats.transients += 1
            raise TransientReadError(
                f"injected transient read failure on path to leaf {leaf}"
            )
        path = tree.path_indices(leaf)
        if u_bitflip < config.bitflip_rate:
            self._inject_bitflip(tree, path)
        if config.replay_rate:
            if u_replay < config.replay_rate:
                self._inject_replay(tree, path)
            self._take_snapshot(tree, path)
        if u_delay < config.delay_rate:
            stats.delays += 1
            stats.delay_cycles += config.delay_cycles
            return config.delay_cycles
        return 0

    def on_memory_access(self) -> int:
        """Transient/delay faults for block-less timing backends."""
        stats = self.stats
        stats.memory_accesses += 1
        config = self.config
        if not self.enabled or not (config.transient_rate or config.delay_rate):
            return 0
        if stats.memory_accesses <= config.start_after:
            return 0
        rng = self.rng
        u_transient = rng.random()
        u_delay = rng.random()
        if u_transient < config.transient_rate:
            stats.transients += 1
            raise TransientReadError("injected transient memory failure")
        if u_delay < config.delay_rate:
            stats.delays += 1
            stats.delay_cycles += config.delay_cycles
            return config.delay_cycles
        return 0

    # ----------------------------------------------------------- internals
    def _inject_bitflip(self, tree, path) -> None:
        """Flip one bit of one real block on the path (if any exists)."""
        buckets = tree._buckets
        candidates = [index for index in path if buckets[index]]
        if not candidates:
            return  # path holds only dummies; a flip there is unobservable
        rng = self.rng
        bucket = buckets[candidates[rng.randbelow(len(candidates))]]
        block = bucket[rng.randbelow(len(bucket))]
        if block.data:
            data = block.data
            byte_index = rng.randbelow(len(data))
            bit = 1 << rng.randbelow(8)
            block.data = (
                data[:byte_index]
                + bytes([data[byte_index] ^ bit])
                + data[byte_index + 1 :]
            )
        else:
            # Payload-less block: corrupt its leaf label instead (the low
            # bit keeps the label in range; the Merkle serialization covers
            # it either way).
            block.leaf ^= 1
        self.stats.bitflips += 1

    def _inject_replay(self, tree, path) -> None:
        """Rewind the first path bucket whose snapshot differs from now."""
        buckets = tree._buckets
        for index in path:
            stale = self._snapshots.get(index)
            if stale is None or _bucket_image(buckets[index]) == stale:
                continue
            buckets[index] = [
                Block(addr, stale_leaf, data or None)
                for addr, stale_leaf, data in stale
            ]
            self.stats.replays += 1
            return

    def _take_snapshot(self, tree, path) -> None:
        """Record one random path bucket for a future replay."""
        index = path[self.rng.randbelow(len(path))]
        self._snapshots[index] = _bucket_image(tree._buckets[index])
        self.stats.snapshots += 1
