"""The self-healing oblivious access path: detection turned into survival.

:class:`ResilientKVStore` is the :class:`~repro.oram.kv_store.ObliviousKVStore`
rebuilt for untrusted storage that actually misbehaves.  It runs on the
Merkle-verified ORAM (every path read checked against the trusted root)
with a :class:`~repro.faults.injector.FaultInjector` wrapping the bucket
array, and reacts to failures with a three-rung escalation ladder:

1. **retry** -- transient read failures are retried with bounded,
   deterministic exponential backoff (jitter from
   :class:`~repro.utils.rng.DeterministicRng`, so runs replay exactly);
2. **restore** -- integrity violations (bit-flips, stale-bucket replays)
   and exhausted retries restore the last good checkpoint and replay the
   client-side write journal, so no acknowledged write is ever lost;
3. **fsck** -- after every recovery (and before every checkpoint capture)
   :func:`~repro.faults.fsck.run_fsck` audits posmap<->tree<->stash
   consistency and root-hash agreement; an inconsistent store raises
   :class:`RecoveryError` rather than limping on.

Sustained stash pressure degrades gracefully instead of silently dropping
into ``stash_soft_overflows``: when occupancy crosses a soft watermark the
store forces extra background evictions (counted, bounded) before the hard
capacity is ever at risk.

Durability invariant: a ``put``/``delete`` is journaled *before* its ORAM
access runs (write-ahead), and the journal is only truncated when a fresh
checkpoint captures its effects -- so at any instant every acknowledged
write is recorded in the checkpoint, the journal, or both.  Replay is
idempotent (a put is a blind overwrite), so at-least-once recovery yields
exactly the acknowledged state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.config import ORAMConfig
from repro.faults.fsck import FsckReport, run_fsck
from repro.faults.injector import FaultConfig, FaultInjector, TransientReadError
from repro.oram.checkpoint import dump_oram, load_oram, restore_oram
from repro.oram.crypto import ProbabilisticCipher
from repro.oram.integrity import IntegrityViolationError, VerifiedPathORAM
from repro.oram.kv_store import ObliviousKVStore
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng

T = TypeVar("T")


class RecoveryError(RuntimeError):
    """The escalation ladder is exhausted; the store cannot self-heal."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the retry / restore / degrade ladder.

    Attributes:
        max_retries: transient-failure retries per operation before the
            failure is treated as persistent and escalated to recovery.
        backoff_base_cycles: base of the exponential backoff; retry ``k``
            waits ``base * 2**k`` cycles plus deterministic jitter.
        backoff_max_cycles: ceiling on the exponential term.  The shift
            is otherwise unbounded in the attempt number, so a generous
            retry budget could charge astronomically large (even
            multi-gigacycle) waits; the cap turns deep retry ladders
            into a plateau instead.
        max_recoveries_per_op: checkpoint recoveries one operation may
            trigger before :class:`RecoveryError` is raised.
        checkpoint_interval: acknowledged writes between checkpoint
            captures (the journal-replay bound after a restore).
        stash_soft_fraction: stash occupancy fraction above which the
            store enters degraded mode and forces background evictions.
        max_forced_evictions: forced evictions per degraded episode.
    """

    max_retries: int = 4
    backoff_base_cycles: int = 16
    backoff_max_cycles: int = 1 << 16
    max_recoveries_per_op: int = 3
    checkpoint_interval: int = 128
    stash_soft_fraction: float = 0.8
    max_forced_evictions: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.backoff_max_cycles < self.backoff_base_cycles:
            raise ValueError(
                "backoff_max_cycles must be >= backoff_base_cycles"
            )
        if not 0.0 < self.stash_soft_fraction <= 1.0:
            raise ValueError("stash_soft_fraction must be in (0, 1]")


@dataclass
class RecoveryStats:
    """Counters of everything the resilient path did to stay alive."""

    transient_faults: int = 0
    retries: int = 0
    backoff_cycles: int = 0
    integrity_violations: int = 0
    recoveries: int = 0
    replayed_ops: int = 0
    fsck_runs: int = 0
    checkpoints: int = 0
    forced_evictions: int = 0
    degraded_events: int = 0

    def as_dict(self) -> dict:
        return {
            "transient_faults": self.transient_faults,
            "retries": self.retries,
            "backoff_cycles": self.backoff_cycles,
            "integrity_violations": self.integrity_violations,
            "recoveries": self.recoveries,
            "replayed_ops": self.replayed_ops,
            "fsck_runs": self.fsck_runs,
            "checkpoints": self.checkpoints,
            "forced_evictions": self.forced_evictions,
            "degraded_events": self.degraded_events,
        }

    def to_registry(self, registry=None):
        """Snapshot into a metrics registry under ``recovery.*`` names.

        The dict above stays the journal/benchmark schema; registry
        consumers (``repro metrics``, dashboards) get typed instruments.
        """
        from repro.observability.collect import collect_recovery

        return collect_recovery(self, registry)


class ResilientKVStore(ObliviousKVStore):
    """Oblivious KV store that survives faulty untrusted storage.

    Args:
        config: ORAM geometry (as for :class:`ObliviousKVStore`).
        key: symmetric key for the probabilistic cipher.
        seed: determinism seed (store randomness, backoff jitter, and the
            recovery RNG forks all derive from it).
        observer: optional adversary observer.
        fault_config: fault classes to inject; ``None`` runs fault-free
            (the injector stays attached but inert, so the access path is
            identical either way).
        resilience: ladder parameters (defaults are sensible).
    """

    def __init__(
        self,
        config: Optional[ORAMConfig] = None,
        key: bytes = b"\x13" * 16,
        seed: int = 7,
        observer=None,
        fault_config: Optional[FaultConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        self.resilience = resilience or ResilienceConfig()
        self.injector = FaultInjector(fault_config or FaultConfig())
        self.recovery = RecoveryStats()
        super().__init__(config=config, key=key, seed=seed, observer=observer)
        self._seed = seed
        self._finish_init()

    # ------------------------------------------------------------- assembly
    def _make_oram(self, config, rng, observer) -> PathORAM:
        return VerifiedPathORAM(config, rng, observer=observer, injector=self.injector)

    def _finish_init(self) -> None:
        """Shared tail of ``__init__`` and :meth:`open`."""
        rng = DeterministicRng(self._seed)
        self._backoff_rng = rng.fork(0xBACF)
        self._recovery_forks = 0
        self._journal: List[Tuple[str, int, Optional[bytes]]] = []
        self._writes_since_checkpoint = 0
        self._stash_soft_limit = max(
            1, int(self._oram.stash.capacity * self.resilience.stash_soft_fraction)
        )
        # Genesis checkpoint: the freshly built (or just restored) store is
        # known good, so recovery always has somewhere to fall back to.
        with self.injector.paused():
            self._last_checkpoint = dump_oram(self._oram)
        self.recovery.checkpoints += 1

    @classmethod
    def open(
        cls,
        path: str,
        key: bytes = b"\x13" * 16,
        seed: int = 7,
        observer=None,
        fault_config: Optional[FaultConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> "ResilientKVStore":
        """Reopen a checkpoint file as a resilient store."""
        store = cls.__new__(cls)
        store.resilience = resilience or ResilienceConfig()
        store.injector = FaultInjector(fault_config or FaultConfig())
        store.recovery = RecoveryStats()
        rng = DeterministicRng(seed)
        with store.injector.paused():
            store._oram = restore_oram(
                path, rng=rng.fork(1), oram_factory=store._oram_factory()
            )
        store.config = store._oram.config
        store.observer = observer
        store._oram.observer = observer
        store._cipher = ProbabilisticCipher(key, rng.fork(2))
        store.capacity = store._oram.position_map.num_blocks
        store.payload_bytes = store.config.block_bytes
        store._seed = seed
        store._finish_init()
        return store

    def _oram_factory(self) -> Callable[..., PathORAM]:
        injector = self.injector

        def factory(config, rng, observer=None, populate=True):
            return VerifiedPathORAM(
                config, rng, observer=observer, populate=populate, injector=injector
            )

        return factory

    # ------------------------------------------------------------ operations
    def get(self, key: int) -> Optional[bytes]:
        """Read ``key``, healing any storage fault encountered on the way."""
        self._check_key(key)
        value = self._guarded(lambda: self._access(key, None))
        self._relieve_stash()
        return value

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` durably: journaled first, acknowledged only after
        the (possibly healed) ORAM access completes."""
        self._check_key(key)
        if len(value) > self.payload_bytes:
            raise ValueError(f"value exceeds {self.payload_bytes} bytes")
        self._journal.append(("put", key, value))
        self._guarded(lambda: self._access(key, value))
        self._note_write()

    def delete(self, key: int) -> None:
        """Reset ``key`` to the unwritten state (journaled like a put)."""
        self._check_key(key)
        self._journal.append(("del", key, None))
        self._guarded(lambda: self._raw_delete(key))
        self._note_write()

    def _raw_delete(self, key: int) -> None:
        self._oram.begin_access([key])[key].data = None
        self._oram.finish_access()
        self._oram.drain_stash()

    def _note_write(self) -> None:
        self._writes_since_checkpoint += 1
        self._relieve_stash()
        if self._writes_since_checkpoint >= self.resilience.checkpoint_interval:
            self._take_checkpoint()

    # ------------------------------------------------------ escalation ladder
    def _guarded(self, op: Callable[[], T]) -> T:
        """Run one storage operation under the retry -> restore ladder."""
        resilience = self.resilience
        stats = self.recovery
        retries = 0
        recoveries = 0
        while True:
            try:
                return op()
            except TransientReadError:
                stats.transient_faults += 1
                if retries < resilience.max_retries:
                    stats.retries += 1
                    stats.backoff_cycles += self._backoff(retries)
                    retries += 1
                    continue
                # Retries exhausted: the "transient" fault is persistent.
                recoveries += 1
                if recoveries > resilience.max_recoveries_per_op:
                    raise RecoveryError(
                        "persistent transient failures survived "
                        f"{recoveries - 1} recoveries"
                    )
                self._recover()
                retries = 0
            except IntegrityViolationError as exc:
                stats.integrity_violations += 1
                recoveries += 1
                if recoveries > resilience.max_recoveries_per_op:
                    raise RecoveryError(
                        f"integrity violations survived {recoveries - 1} "
                        f"recoveries (last: {exc})"
                    )
                self._recover()
                retries = 0

    def _backoff(self, attempt: int) -> int:
        """Exponential backoff cycles for retry ``attempt`` (0-based), with
        deterministic jitter so repeated runs replay exactly.  The
        exponential term saturates at ``backoff_max_cycles`` -- an
        unbounded shift would charge absurd waits under deep retry
        budgets (and overflow any realistic cycle budget)."""
        base = self.resilience.backoff_base_cycles
        # Cap the shift amount too: (base << attempt) materializes a
        # huge integer before min() could discard it.
        capped_attempt = min(attempt, self.resilience.backoff_max_cycles.bit_length())
        wait = min(base << capped_attempt, self.resilience.backoff_max_cycles)
        return wait + self._backoff_rng.randbelow(max(1, base))

    # --------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Rung 2 + 3: restore the last good checkpoint, replay the journal,
        then audit the result with fsck."""
        self.recovery.recoveries += 1
        self._recovery_forks += 1
        rng = DeterministicRng(self._seed).fork(0x5EC0 + self._recovery_forks)
        # Recovery reads the sealed checkpoint store and replays through a
        # freshly verified tree; the fault model covers steady-state
        # operation, so injection pauses for the duration.
        with self.injector.paused():
            self._oram = load_oram(
                self._last_checkpoint,
                rng=rng,
                observer=self.observer,
                oram_factory=self._oram_factory(),
            )
            for op, key, value in self._journal:
                if op == "put":
                    self._access(key, value)
                else:
                    self._raw_delete(key)
                self.recovery.replayed_ops += 1
            report = self._audit()
            if not report.ok:
                raise RecoveryError(f"post-recovery fsck failed:\n{report.summary()}")

    def _audit(self) -> FsckReport:
        self.recovery.fsck_runs += 1
        return run_fsck(self._oram)

    def _take_checkpoint(self) -> None:
        """Capture a new last-good checkpoint and truncate the journal.

        The capture is guarded by a full audit: a checkpoint must never
        seal in undetected corruption, or recovery would faithfully restore
        the damage.
        """
        with self.injector.paused():
            if not self._audit().ok:
                self._recover()
            self._oram.drain_stash()
            self._last_checkpoint = dump_oram(self._oram)
        self._journal.clear()
        self._writes_since_checkpoint = 0
        self.recovery.checkpoints += 1

    # ------------------------------------------------------------ degradation
    def _relieve_stash(self) -> None:
        """Graceful degradation under sustained stash pressure.

        Forces bounded background evictions once occupancy crosses the soft
        watermark, well before ``drain_stash`` would give up and record a
        ``stash_soft_overflow``."""
        stash = self._oram.stash
        if len(stash) <= self._stash_soft_limit:
            return
        self.recovery.degraded_events += 1
        forced = 0
        while (
            len(stash) > self._stash_soft_limit
            and forced < self.resilience.max_forced_evictions
        ):
            self._guarded(lambda: self._oram.dummy_access("forced"))
            forced += 1
        self.recovery.forced_evictions += forced

    # ------------------------------------------------------------------ misc
    def checkpoint_now(self) -> None:
        """Force a checkpoint capture (tests and orderly shutdown)."""
        self._take_checkpoint()

    @property
    def fault_stats(self):
        """The injector's :class:`~repro.faults.injector.FaultStats`."""
        return self.injector.stats

    def metrics(self, registry=None):
        """One registry with the ladder's ``recovery.*`` counters plus the
        injector's ``faults.injected_*`` totals (the ``repro metrics``
        surface for resilient stores)."""
        registry = self.recovery.to_registry(registry)
        for name, value in self.injector.stats.as_dict().items():
            registry.counter(f"faults.injected_{name}").set(value)
        return registry
