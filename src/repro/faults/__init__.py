"""Fault injection and self-healing recovery for the ORAM stack.

The paper's secure processors assume *untrusted* external memory; this
package supplies (a) a deterministic adversary/environment that makes that
memory misbehave -- bit-flips, stale-bucket replay, transient read
failures, delayed responses -- and (b) the resilient access path that
survives it: retry with deterministic backoff, checkpoint restore with
write-journal replay, a post-recovery consistency audit (``fsck``), and
graceful degradation under stash pressure.

Entry points:

* :class:`FaultConfig` / :class:`FaultInjector` -- the fault source
  (:mod:`repro.faults.injector`);
* :class:`ResilientKVStore` / :class:`ResilienceConfig` -- the
  self-healing store (:mod:`repro.faults.resilient`);
* :func:`run_fsck` / :func:`run_fsck_bank` / :func:`assert_consistent` --
  the invariant auditor (:mod:`repro.faults.fsck`), covering every
  ``ORAMScheme`` implementation and sharded banks.
"""

from repro.faults.chaos import (
    ChaosEvent,
    ChaosReport,
    ChaosScenario,
    chaos_policy,
    run_chaos,
)
from repro.faults.fsck import (
    FsckError,
    FsckReport,
    assert_consistent,
    run_fsck,
    run_fsck_bank,
)
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultStats,
    TransientReadError,
)
from repro.faults.resilient import (
    RecoveryError,
    RecoveryStats,
    ResilienceConfig,
    ResilientKVStore,
)

__all__ = [
    "ChaosEvent",
    "ChaosReport",
    "ChaosScenario",
    "chaos_policy",
    "run_chaos",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "TransientReadError",
    "FsckError",
    "FsckReport",
    "assert_consistent",
    "run_fsck",
    "run_fsck_bank",
    "RecoveryError",
    "RecoveryStats",
    "ResilienceConfig",
    "ResilientKVStore",
]
