"""PrORAM: Dynamic Prefetcher for Oblivious RAM -- a full reproduction.

This package reimplements the complete system of Yu et al., ISCA 2015:

* the Path ORAM substrate with recursion, background eviction, and
  probabilistic encryption (:mod:`repro.oram`);
* the PrORAM dynamic super block prefetcher -- merge/break counters,
  static and adaptive thresholding (:mod:`repro.core`);
* a trace-driven secure-processor simulator: in-order core, L1 + shared
  LLC, DRAM and ORAM memory backends, traditional prefetchers, and
  periodic timing-channel protection (:mod:`repro.sim`, :mod:`repro.cache`,
  :mod:`repro.memory`, :mod:`repro.prefetch`);
* workload models for the paper's synthetic, Splash2, SPEC06, and DBMS
  evaluations (:mod:`repro.workloads`);
* obliviousness auditing (:mod:`repro.security`) and the experiment
  harness (:mod:`repro.analysis`).

Quick start::

    from repro import SecureSystem, locality_mix_trace, run_schemes

    trace = locality_mix_trace(locality=0.8)
    results = run_schemes(trace, ["oram", "stat", "dyn"])
    gain = results["dyn"].speedup_over(results["oram"])
"""

from repro.analysis.experiments import run_schemes
from repro.config import (
    CacheConfig,
    DEFAULT_CONFIG,
    DRAMConfig,
    ORAMConfig,
    PrefetchConfig,
    SystemConfig,
    TimingProtectionConfig,
)
from repro.core.dynamic import DynamicSuperBlockScheme
from repro.core.thresholds import AdaptiveThresholdPolicy, StaticThresholdPolicy
from repro.oram.kv_store import ObliviousKVStore
from repro.oram.path_oram import PathORAM
from repro.oram.super_block import BaselineScheme, StaticSuperBlockScheme
from repro.security.observer import AccessObserver
from repro.sim.results import SimResult
from repro.sim.system import SecureSystem
from repro.sim.trace import Trace
from repro.workloads.synthetic import (
    locality_mix_trace,
    phase_change_trace,
    sequential_trace,
    uniform_random_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessObserver",
    "AdaptiveThresholdPolicy",
    "BaselineScheme",
    "CacheConfig",
    "DEFAULT_CONFIG",
    "DRAMConfig",
    "DynamicSuperBlockScheme",
    "ORAMConfig",
    "ObliviousKVStore",
    "PathORAM",
    "PrefetchConfig",
    "SecureSystem",
    "SimResult",
    "StaticSuperBlockScheme",
    "StaticThresholdPolicy",
    "SystemConfig",
    "TimingProtectionConfig",
    "Trace",
    "locality_mix_trace",
    "phase_change_trace",
    "run_schemes",
    "sequential_trace",
    "uniform_random_trace",
]
