"""Per-shard circuit breakers: the health state machine itself.

A :class:`CircuitBreaker` classifies one shard (a bank channel or a
parallel worker) into four states:

* **HEALTHY** -- full-rate routing, no mitigation active;
* **DEGRADED** -- the shard still serves traffic but its super-block
  merges and prefetcher are throttled (they amplify stash pressure and
  queueing); entered on a tripped failure-rate / latency window or a
  stash-pressure signal, left after clean windows;
* **QUARANTINED** -- the shard is not trusted with demand traffic.  The
  owner routes its addresses through a serial fallback path with
  dummy-access padding (see the bank / parallel runtime integrations);
  entered on a hard failure (worker death, hung heartbeat, deadline
  violation) or a failure storm;
* **PROBING** -- half-open: a bounded batch of probe accesses runs
  against the shard; enough consecutive successes re-admit it, any
  failure sends it back to quarantine.

Every decision is driven by *event counts* (windows of recorded
successes/failures, cooldown access counts, probe budgets) -- never by
wall-clock time -- so a fixed access sequence walks a fixed state
trajectory and tests can pin transitions exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import List, Optional, Tuple


class HealthState(enum.Enum):
    """The four health states of one shard."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    PROBING = "probing"

    @property
    def code(self) -> int:
        """Stable numeric code for gauges (0 = healthy .. 3 = probing)."""
        return _STATE_CODES[self]

    @property
    def throttled(self) -> bool:
        """Whether mitigation (merge/prefetch throttling) applies."""
        return self is not HealthState.HEALTHY


_STATE_CODES = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED: 1,
    HealthState.QUARANTINED: 2,
    HealthState.PROBING: 3,
}


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the health state machine and its enforcement deadlines.

    Attributes:
        window: accesses per breaker evaluation window.
        degrade_failure_rate: windowed failure fraction at or above which
            a HEALTHY shard enters DEGRADED.
        quarantine_failure_rate: windowed failure fraction at or above
            which a shard (healthy or degraded) is QUARANTINED outright
            -- the fault-storm trip.
        degrade_latency_cycles: mean per-access latency (cycles) over a
            window above which the shard degrades; ``0`` disables the
            latency trip.
        recover_windows: consecutive clean windows (no trip) required to
            leave DEGRADED.
        quarantine_cooldown: fallback-served accesses a quarantined
            shard sits out before it may be probed.
        probe_batch: maximum probe accesses per half-open episode; the
            budget bounds how much demand traffic a sick shard can see.
        probe_successes: consecutive successful probes that re-admit the
            shard (must be <= probe_batch).
        stash_pressure_fraction: stash occupancy fraction that counts as
            a pressure signal and degrades the shard immediately.
        heartbeat_every: accesses between worker heartbeat replies in
            the parallel runtime (0 disables heartbeats).
        batch_deadline_s: wall-clock seconds without progress (ack or
            heartbeat) after which an in-flight parallel worker is
            declared hung and its breaker trips; ``0`` disables
            deadline enforcement.
        join_timeout_s: ``Process.join`` timeout used by the parallel
            runtime's lifecycle paths (hoisted from the former
            hard-coded 5 s constants so chaos tests can shrink it).
    """

    window: int = 64
    degrade_failure_rate: float = 0.05
    quarantine_failure_rate: float = 0.5
    degrade_latency_cycles: int = 0
    recover_windows: int = 1
    quarantine_cooldown: int = 32
    probe_batch: int = 16
    probe_successes: int = 4
    stash_pressure_fraction: float = 0.9
    heartbeat_every: int = 16
    batch_deadline_s: float = 20.0
    join_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        for name in ("degrade_failure_rate", "quarantine_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.degrade_failure_rate > self.quarantine_failure_rate:
            raise ValueError(
                "degrade_failure_rate must not exceed quarantine_failure_rate"
            )
        if not 0.0 < self.stash_pressure_fraction <= 1.0:
            raise ValueError("stash_pressure_fraction must be in (0, 1]")
        if self.probe_successes > self.probe_batch:
            raise ValueError("probe_successes must be <= probe_batch")
        if min(self.probe_batch, self.probe_successes, self.recover_windows) < 1:
            raise ValueError("probe/recover budgets must be >= 1")
        if self.quarantine_cooldown < 0:
            raise ValueError("quarantine_cooldown must be >= 0")
        if self.batch_deadline_s < 0 or self.join_timeout_s <= 0:
            raise ValueError("deadlines must be positive (batch deadline may be 0)")

    @classmethod
    def parse(cls, spec: str) -> "HealthPolicy":
        """Build a policy from a ``key=value,key=value`` CLI string.

        Unknown keys raise; value types follow the field annotations
        (int / float), so ``--health-policy window=32,probe_batch=8``
        works without any per-key plumbing.
        """
        policy = cls()
        if not spec:
            return policy
        known = {field.name: field.type for field in fields(cls)}
        updates = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or key not in known:
                names = ", ".join(sorted(known))
                raise ValueError(
                    f"bad health-policy entry {item!r} (known keys: {names})"
                )
            caster = float if "float" in str(known[key]) else int
            updates[key] = caster(raw.strip())
        return replace(policy, **updates)


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state-machine edge."""

    event_index: int
    previous: HealthState
    state: HealthState
    reason: str


class CircuitBreaker:
    """The deterministic health state machine for one shard.

    The owner feeds it one call per observed access --
    :meth:`record_success` / :meth:`record_failure` for routed traffic,
    :meth:`record_fallback` while quarantined, :meth:`record_probe`
    while half-open -- plus :meth:`record_hard_failure` for
    process-level events (death, hang).  The breaker answers with its
    :attr:`state`; the owner is responsible for the matching routing
    (throttle / fallback / probe), which keeps the machine itself free
    of any simulator coupling.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None, name: str = "shard"):
        self.policy = policy or HealthPolicy()
        self.name = name
        self.state = HealthState.HEALTHY
        self.events = 0
        self.transitions: List[HealthTransition] = []
        # current-window accumulators
        self._window_events = 0
        self._window_failures = 0
        self._window_latency = 0
        self._window_pressure = False
        self._clean_windows = 0
        # quarantine / probe accounting
        self._fallback_served = 0
        self._probes = 0
        self._probe_streak = 0
        self.hard_failures = 0
        self.quarantines = 0
        self.probes_total = 0
        self.readmissions = 0

    # ------------------------------------------------------------ transitions
    def _transition(self, state: HealthState, reason: str) -> None:
        if state is self.state:
            return
        self.transitions.append(
            HealthTransition(self.events, self.state, state, reason)
        )
        self.state = state
        if state is HealthState.QUARANTINED:
            self.quarantines += 1
            self._fallback_served = 0
        elif state is HealthState.PROBING:
            self._probes = 0
            self._probe_streak = 0
        elif state is HealthState.HEALTHY and self.transitions[-1].previous in (
            HealthState.PROBING,
            HealthState.QUARANTINED,
        ):
            self.readmissions += 1
        self._reset_window()

    def _reset_window(self) -> None:
        self._window_events = 0
        self._window_failures = 0
        self._window_latency = 0
        self._window_pressure = False

    # ---------------------------------------------------------------- feeding
    def record_success(self, latency_cycles: int = 0) -> None:
        """One routed access completed without a fault."""
        self.events += 1
        self._window_events += 1
        self._window_latency += latency_cycles
        self._maybe_evaluate()

    def record_failure(self, latency_cycles: int = 0) -> None:
        """One routed access hit a (recoverable) fault."""
        self.events += 1
        self._window_events += 1
        self._window_failures += 1
        self._window_latency += latency_cycles
        self._maybe_evaluate()

    def record_pressure(self) -> None:
        """Stash-pressure signal: degrade *now*, before load is shed."""
        self._window_pressure = True
        if self.state is HealthState.HEALTHY:
            self._transition(HealthState.DEGRADED, "stash_pressure")

    def record_hard_failure(self, reason: str = "hard_failure") -> None:
        """Process-level failure (worker death, hung deadline): quarantine."""
        self.events += 1
        self.hard_failures += 1
        self._transition(HealthState.QUARANTINED, reason)

    def record_fallback(self) -> None:
        """One quarantined access served by the fallback path."""
        self.events += 1
        self._fallback_served += 1

    def record_probe(self, ok: bool) -> None:
        """Outcome of one half-open probe access."""
        self.events += 1
        self.probes_total += 1
        self._probes += 1
        if not ok:
            self._transition(HealthState.QUARANTINED, "probe_failed")
            return
        self._probe_streak += 1
        if self._probe_streak >= self.policy.probe_successes:
            self._transition(HealthState.HEALTHY, "probe_passed")
        elif self._probes >= self.policy.probe_batch:
            # Budget exhausted without the required streak: not healthy.
            self._transition(HealthState.QUARANTINED, "probe_budget_exhausted")

    # ------------------------------------------------------------- evaluation
    @property
    def ready_to_probe(self) -> bool:
        """Quarantined and past its cooldown: the owner may begin probing."""
        return (
            self.state is HealthState.QUARANTINED
            and self._fallback_served >= self.policy.quarantine_cooldown
        )

    def begin_probe(self) -> None:
        """Half-open the breaker (owner calls when ``ready_to_probe``)."""
        if self.state is not HealthState.QUARANTINED:
            raise ValueError(f"cannot probe from {self.state.value}")
        self._transition(HealthState.PROBING, "cooldown_elapsed")

    def _maybe_evaluate(self) -> None:
        policy = self.policy
        if self._window_events < policy.window:
            return
        failure_rate = self._window_failures / self._window_events
        mean_latency = self._window_latency / self._window_events
        slow = (
            policy.degrade_latency_cycles
            and mean_latency > policy.degrade_latency_cycles
        )
        tripped = (
            failure_rate >= policy.degrade_failure_rate
            or slow
            or self._window_pressure
        )
        if failure_rate >= policy.quarantine_failure_rate:
            self._transition(HealthState.QUARANTINED, "failure_storm")
            return
        if self.state is HealthState.HEALTHY:
            if tripped:
                reason = "failure_window" if not slow else "latency_window"
                self._transition(HealthState.DEGRADED, reason)
            else:
                self._reset_window()
            return
        if self.state is HealthState.DEGRADED:
            if tripped:
                self._clean_windows = 0
            else:
                self._clean_windows += 1
                if self._clean_windows >= policy.recover_windows:
                    self._clean_windows = 0
                    self._transition(HealthState.HEALTHY, "window_recovered")
                    return
            self._reset_window()

    # ---------------------------------------------------------------- queries
    def transition_pairs(self) -> List[Tuple[str, str]]:
        return [(t.previous.value, t.state.value) for t in self.transitions]

    def summary(self) -> str:
        return (
            f"{self.name}: {self.state.value} after {self.events} events, "
            f"{len(self.transitions)} transitions, "
            f"{self.quarantines} quarantines, {self.readmissions} re-admissions"
        )
