"""The health-state control plane: one breaker per shard, one registry.

:class:`HealthControlPlane` owns the :class:`~repro.health.breaker.
CircuitBreaker` of every shard in a bank (or every worker of a parallel
runtime), mirrors their states into a
:class:`~repro.observability.metrics.MetricsRegistry` under
``health.shard<i>.*`` names, and answers the routing questions the
owners ask (*is this shard quarantined? may it be probed? should its
merges be throttled?*).  It never touches a shard itself -- the bank and
the parallel runtime remain the only actors on their components -- so
the plane stays a pure, deterministic decision layer that both
integrations (and the chaos harness) share.
"""

from __future__ import annotations

from typing import List, Optional

from repro.health.breaker import CircuitBreaker, HealthPolicy, HealthState
from repro.observability.metrics import MetricsRegistry


class HealthControlPlane:
    """Per-shard circuit breakers behind one decision surface.

    Args:
        num_shards: how many breakers to manage (bank width).
        policy: shared :class:`HealthPolicy` (defaults apply when omitted).
        metrics: optional registry the plane mirrors state into; a private
            one is created when omitted (reachable as :attr:`registry`).
    """

    def __init__(
        self,
        num_shards: int,
        policy: Optional[HealthPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.policy = policy or HealthPolicy()
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(self.policy, name=f"shard{index}")
            for index in range(num_shards)
        ]
        for index in range(num_shards):
            self.registry.gauge(f"health.shard{index}.state").set(
                HealthState.HEALTHY.code
            )

    # ------------------------------------------------------------------ events
    def _sync(self, index: int, breaker: CircuitBreaker, before: int) -> None:
        """Mirror a breaker's state into the registry after an event."""
        after = len(breaker.transitions)
        if after == before:
            return
        registry = self.registry
        registry.gauge(f"health.shard{index}.state").set(breaker.state.code)
        for transition in breaker.transitions[before:after]:
            registry.counter(f"health.shard{index}.transitions").inc()
            registry.counter(
                "health.transitions."
                f"{transition.previous.value}_to_{transition.state.value}"
            ).inc()

    def record_access(
        self, index: int, ok: bool, latency_cycles: int = 0
    ) -> HealthState:
        """Feed one routed access outcome; returns the (new) state."""
        breaker = self.breakers[index]
        before = len(breaker.transitions)
        if ok:
            breaker.record_success(latency_cycles)
        else:
            breaker.record_failure(latency_cycles)
        self._sync(index, breaker, before)
        return breaker.state

    def record_pressure(self, index: int) -> HealthState:
        breaker = self.breakers[index]
        before = len(breaker.transitions)
        breaker.record_pressure()
        self._sync(index, breaker, before)
        return breaker.state

    def record_hard_failure(
        self, index: int, reason: str = "hard_failure"
    ) -> HealthState:
        breaker = self.breakers[index]
        before = len(breaker.transitions)
        breaker.record_hard_failure(reason)
        self.registry.counter(f"health.shard{index}.hard_failures").inc()
        self._sync(index, breaker, before)
        return breaker.state

    def record_fallback(self, index: int) -> None:
        self.breakers[index].record_fallback()
        self.registry.counter(f"health.shard{index}.fallback_accesses").inc()

    def record_probe(self, index: int, ok: bool) -> HealthState:
        breaker = self.breakers[index]
        before = len(breaker.transitions)
        breaker.record_probe(ok)
        self.registry.counter(f"health.shard{index}.probes").inc()
        self._sync(index, breaker, before)
        return breaker.state

    def begin_probe_if_ready(self, index: int) -> bool:
        """Half-open a quarantined shard whose cooldown elapsed."""
        breaker = self.breakers[index]
        if not breaker.ready_to_probe:
            return False
        before = len(breaker.transitions)
        breaker.begin_probe()
        self._sync(index, breaker, before)
        return True

    # ----------------------------------------------------------------- queries
    def state(self, index: int) -> HealthState:
        return self.breakers[index].state

    @property
    def num_shards(self) -> int:
        return len(self.breakers)

    @property
    def all_healthy(self) -> bool:
        return all(b.state is HealthState.HEALTHY for b in self.breakers)

    def should_reroute(self, index: int) -> bool:
        """Admission-time routing query: send this shard's *new* arrivals
        down the serial fallback lane instead of batching them?  True only
        while the shard is quarantined -- probing and degraded shards keep
        taking batched traffic (smaller batches for the latter)."""
        return self.breakers[index].state is HealthState.QUARANTINED

    def throttled(self, index: int) -> bool:
        """Should this shard's batch quota be reduced (degraded/probing)?"""
        return self.breakers[index].state.throttled

    def quarantined(self) -> List[int]:
        return [
            index
            for index, breaker in enumerate(self.breakers)
            if breaker.state is HealthState.QUARANTINED
        ]

    def total_transitions(self) -> int:
        return sum(len(b.transitions) for b in self.breakers)

    def total_quarantines(self) -> int:
        return sum(b.quarantines for b in self.breakers)

    def total_readmissions(self) -> int:
        return sum(b.readmissions for b in self.breakers)

    # ----------------------------------------------------------------- exports
    def to_registry(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Copy the plane's ``health.*`` instruments into *registry*."""
        registry = registry if registry is not None else MetricsRegistry()
        for instrument in self.registry:
            if not instrument.name.startswith("health."):
                continue
            if instrument.kind == "gauge":
                registry.gauge(instrument.name).set(instrument.value)
            else:
                registry.counter(instrument.name).set(instrument.value)
        return registry

    def render(self) -> str:
        lines = [f"health plane: {self.num_shards} shards"]
        for breaker in self.breakers:
            lines.append("  " + breaker.summary())
            for transition in breaker.transitions:
                lines.append(
                    f"    @{transition.event_index}: "
                    f"{transition.previous.value} -> {transition.state.value} "
                    f"({transition.reason})"
                )
        return "\n".join(lines)
