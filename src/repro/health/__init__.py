"""Health-state control plane for sharded ORAM deployments.

The ROADMAP's production target must survive *sick* shards, not just
dead ones: a stalled worker, a fault storm concentrated on one channel,
sustained stash pressure.  This package supplies the decision layer
(DESIGN.md section 10):

* :class:`HealthState` / :class:`HealthPolicy` / :class:`CircuitBreaker`
  (:mod:`repro.health.breaker`) -- the per-shard state machine
  ``HEALTHY -> DEGRADED -> QUARANTINED -> PROBING -> HEALTHY`` driven by
  deterministic failure-rate and latency windows;
* :class:`HealthControlPlane` (:mod:`repro.health.plane`) -- one breaker
  per shard, mirrored into a metrics registry under ``health.*`` names,
  shared by the in-process :class:`~repro.controller.sharded.
  ShardedORAMBank` and the :class:`~repro.parallel.runtime.
  ParallelShardRuntime`.

The enforcement (merge/prefetch throttling, serial fallback routing with
dummy-access padding, heartbeat deadlines, half-open probe batches)
lives with the component owners; the plane only decides.
"""

from repro.health.breaker import (
    CircuitBreaker,
    HealthPolicy,
    HealthState,
    HealthTransition,
)
from repro.health.plane import HealthControlPlane

__all__ = [
    "CircuitBreaker",
    "HealthControlPlane",
    "HealthPolicy",
    "HealthState",
    "HealthTransition",
]
