"""The Path ORAM binary tree (paper section 2.2, Figure 1).

The tree is stored heap-style in a flat list of buckets.  Level 0 is the
root; level ``L`` holds the ``2**L`` leaves.  Each bucket holds up to ``Z``
real blocks; slots not occupied by real blocks are implicitly dummy blocks
(the adversary-visible serialization in :mod:`repro.oram.crypto` pads every
bucket to ``Z`` ciphertexts so real and dummy blocks are indistinguishable).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.oram.block import Block

_ADDR_OF = attrgetter("addr")


@dataclass(frozen=True)
class PhysicalAddress:
    """Where one bucket lives in DRAM: ``(channel, bank, row)``."""

    channel: int
    bank: int
    row: int


class PhysicalLayout:
    """Subtree-to-channel tiling of the bucket tree onto physical DRAM.

    The tree is partitioned into complete subtrees of height
    ``subtree_levels`` (``h``): tier 0 is the single subtree rooted at
    the root, tier 1 the ``2**h`` subtrees rooted at level ``h``, and so
    on.  Subtrees are striped across channels with a per-tier rotation
    (``channel = (index_within_tier + tier) % C``): the rotation makes
    the one subtree a path touches per tier land on a *different*
    channel tier after tier, even for leaves whose within-tier index is
    constant (the functional-to-nominal leaf embedding produces exactly
    such paths).  Each channel then packs the subtrees it owns densely
    -- tiers occupy disjoint slot ranges, so the bucket-to-location map
    is injective -- with the slot striped across banks and the
    remainder selecting the DRAM row.  One subtree's ``Z * (2**h - 1)``
    blocks sit contiguously in a single row, so reading a path segment
    that crosses the subtree is one row activation + one burst.

    This is the layout Path ORAM's geometry invites (every access touches
    exactly one subtree per tier, and consecutive tiers land on
    *different* channels for almost every leaf), which is what lets the
    channel interconnect overlap a path's bucket transfers.  The layout
    is built over the **nominal** tree -- the paper-scale geometry that
    timing is charged against -- not the small functional tree.
    """

    def __init__(
        self,
        levels: int,
        num_channels: int,
        num_banks: int,
        subtree_levels: int = 2,
    ):
        if levels < 1:
            raise ValueError("layout needs a tree with at least 1 level")
        if num_channels < 1 or num_banks < 1:
            raise ValueError("layout needs at least one channel and bank")
        if subtree_levels < 1:
            raise ValueError("subtree tiles must be at least one level tall")
        self.levels = levels
        self.num_channels = num_channels
        self.num_banks = num_banks
        self.subtree_levels = subtree_levels
        # base[t] = number of subtrees in tiers < t (tier t roots sit at
        # level t * subtree_levels and there are 2**(t*h) of them).
        base: List[int] = []
        count = 0
        for root_level in range(0, levels + 1, subtree_levels):
            base.append(count)
            count += 1 << root_level
        self._tier_base: Tuple[int, ...] = tuple(base)
        self.num_subtrees = count
        # offsets[t][c] = slots channel c has handed out to tiers < t.
        # Tier t assigns within-tier index x to channel (x + t) % C, so
        # channel c receives the x's congruent to (c - t) mod C -- their
        # count per tier is a closed form, accumulated here once.
        channels = num_channels
        running = [0] * channels
        offsets: List[Tuple[int, ...]] = []
        for tier, root_level in enumerate(range(0, levels + 1, subtree_levels)):
            offsets.append(tuple(running))
            size = 1 << root_level
            for channel in range(channels):
                first = (channel - tier) % channels
                if first < size:
                    running[channel] += (size - first + channels - 1) // channels
        self._tier_offsets: Tuple[Tuple[int, ...], ...] = tuple(offsets)
        self._path_cache: Dict[int, Tuple[PhysicalAddress, ...]] = {}

    def subtree_id(self, level: int, leaf: int) -> int:
        """Breadth-first id of the subtree containing bucket (level, leaf)."""
        if not 0 <= level <= self.levels:
            raise ValueError(f"level {level} out of range [0, {self.levels}]")
        root_level = level - level % self.subtree_levels
        return self._tier_base[root_level // self.subtree_levels] + (
            leaf >> (self.levels - root_level)
        )

    def subtree_address(self, subtree: int) -> PhysicalAddress:
        """Physical placement of one subtree tile."""
        if not 0 <= subtree < self.num_subtrees:
            raise ValueError(
                f"subtree {subtree} out of range [0, {self.num_subtrees})"
            )
        tier = 0
        while (
            tier + 1 < len(self._tier_base) and self._tier_base[tier + 1] <= subtree
        ):
            tier += 1
        return self._place(subtree - self._tier_base[tier], tier)

    def _place(self, index: int, tier: int) -> PhysicalAddress:
        """Place within-tier subtree ``index`` of ``tier`` (see class doc)."""
        channel = (index + tier) % self.num_channels
        slot = self._tier_offsets[tier][channel] + index // self.num_channels
        return PhysicalAddress(
            channel=channel, bank=slot % self.num_banks, row=slot // self.num_banks
        )

    def address_of(self, level: int, leaf: int) -> PhysicalAddress:
        """Physical address of the bucket at ``level`` on the path to ``leaf``."""
        root_level = level - level % self.subtree_levels
        tier = root_level // self.subtree_levels
        return self._place(leaf >> (self.levels - root_level), tier)

    def path_addresses(self, leaf: int) -> Sequence[PhysicalAddress]:
        """Physical addresses of the root-to-leaf path, root first (memoized).

        Consecutive entries repeat while the path stays inside one
        subtree tile; the interconnect coalesces those repeats into a
        single array access.
        """
        path = self._path_cache.get(leaf)
        if path is None:
            if not 0 <= leaf < (1 << self.levels):
                raise ValueError(f"leaf {leaf} out of range [0, {1 << self.levels})")
            path = tuple(
                self.address_of(level, leaf) for level in range(self.levels + 1)
            )
            self._path_cache[leaf] = path
        return path


class TreetopCache:
    """On-chip SRAM pinning the top ``levels`` of the tree (DESIGN.md §13).

    Holds the ``2**levels - 1`` hottest buckets -- the ones every path
    access touches -- so path reads/writes for those levels never go over
    the interconnect.  ``store`` is indexed by *heap index* (the pinned
    region is exactly the heap prefix ``[0, 2**levels - 1)``), ``dirty``
    marks buckets whose on-chip content diverges from the off-chip DRAM
    image, and :meth:`BinaryTree.flush_treetop` writes the dirty set back.

    Security: the treetop is touched identically by every access (real or
    dummy), so which buckets are pinned -- and that they are served
    on-chip -- is public information; hiding them leaks nothing.
    """

    __slots__ = ("levels", "num_buckets", "store", "dirty", "hits", "flushes", "flushed_buckets")

    def __init__(self, levels: int):
        if levels < 1:
            raise ValueError("a treetop cache needs at least 1 pinned level")
        self.levels = levels
        self.num_buckets = (1 << levels) - 1
        self.store: List[List[Block]] = [[] for _ in range(self.num_buckets)]
        self.dirty = bytearray(self.num_buckets)
        #: buckets served from SRAM instead of DRAM (one per pinned level
        #: per path read)
        self.hits = 0
        self.flushes = 0
        self.flushed_buckets = 0


class BinaryTree:
    """Bucketed binary tree with arithmetic path indexing.

    The bucket at level ``l`` on the path to leaf ``s`` has heap index
    ``(1 << l) - 1 + (s >> (levels - l))``: the high ``l`` bits of the leaf
    label select the node within the level.  Path index vectors are
    memoized per leaf (the geometry never changes after construction), so
    the per-access ``read_path``/write-back pair never recomputes them.

    With a :class:`TreetopCache` attached (:meth:`attach_treetop`), the
    heap prefix ``[0, 2**k - 1)`` -- equivalently every bucket at a level
    ``< k`` -- lives in the cache's on-chip store; ``_buckets`` keeps the
    (possibly stale) off-chip DRAM image for those indices.  All content
    accessors (:meth:`bucket`, :meth:`read_path_into`,
    :meth:`write_bucket_at`, :meth:`occupancy`, :meth:`iter_blocks`)
    consult the store for pinned indices, so the *functional* block
    movement is identical with and without the cache -- only where the
    bytes live (and therefore what the interconnect streams) changes.
    """

    def __init__(self, levels: int, bucket_size: int):
        if levels < 1:
            raise ValueError("tree must have at least 1 level below the root")
        if bucket_size < 1:
            raise ValueError("bucket size must be >= 1")
        self.levels = levels
        self.bucket_size = bucket_size
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        self._buckets: List[List[Block]] = [[] for _ in range(self.num_buckets)]
        self._path_cache: Dict[int, Tuple[int, ...]] = {}
        self.treetop: "TreetopCache | None" = None
        #: pinned path levels (0 when no treetop is attached)
        self._treetop_levels = 0
        #: heap indices below this boundary are served on-chip
        self._treetop_buckets = 0

    def attach_treetop(self, levels: int) -> TreetopCache:
        """Pin the top ``levels`` of this tree in an on-chip store.

        The current contents of the pinned buckets move into the store;
        ``_buckets`` keeps a snapshot as the off-chip DRAM image, so the
        cache starts clean (image == store).  Must be attached at most
        once, and ``levels`` must leave the leaf level off-chip.
        """
        if self.treetop is not None:
            raise RuntimeError("treetop cache already attached")
        if not 1 <= levels <= self.levels:
            raise ValueError(
                f"treetop must pin between 1 and {self.levels} levels, got {levels}"
            )
        cache = TreetopCache(levels)
        for index in range(cache.num_buckets):
            cache.store[index] = self._buckets[index]
            self._buckets[index] = list(cache.store[index])
        self.treetop = cache
        self._treetop_levels = levels
        self._treetop_buckets = cache.num_buckets
        return cache

    def flush_treetop(self) -> int:
        """Write every dirty pinned bucket back to the off-chip image.

        Returns the number of buckets written.  The write-back is modeled
        off the critical path (DESIGN.md §13): dirty treetop buckets drain
        opportunistically in idle bus cycles, so no access latency is
        charged here -- the counter exists so the traffic is observable.
        """
        cache = self.treetop
        if cache is None:
            return 0
        written = 0
        dirty = cache.dirty
        store = cache.store
        buckets = self._buckets
        for index in range(cache.num_buckets):
            if dirty[index]:
                buckets[index] = list(store[index])
                dirty[index] = 0
                written += 1
        cache.flushes += 1
        cache.flushed_buckets += written
        return written

    def bucket_index(self, level: int, leaf: int) -> int:
        """Heap index of the bucket at ``level`` on the path to ``leaf``."""
        return (1 << level) - 1 + (leaf >> (self.levels - level))

    def path_indices(self, leaf: int) -> Sequence[int]:
        """Heap indices of the root-to-leaf path, root first (memoized)."""
        path = self._path_cache.get(leaf)
        if path is None:
            if not 0 <= leaf < self.num_leaves:
                raise ValueError(f"leaf {leaf} out of range [0, {self.num_leaves})")
            levels = self.levels
            path = tuple(
                (1 << level) - 1 + (leaf >> (levels - level))
                for level in range(levels + 1)
            )
            self._path_cache[leaf] = path
        return path

    def bucket(self, index: int) -> List[Block]:
        """The (mutable) list of real blocks in bucket ``index``.

        Pinned indices read through to the on-chip store -- callers always
        see the live contents, never the stale DRAM image.
        """
        if index < self._treetop_buckets:
            return self.treetop.store[index]
        return self._buckets[index]

    def read_path(self, leaf: int) -> List[Block]:
        """Remove and return every real block on the path to ``leaf``.

        This is step 2 of the access protocol: all buckets on the path are
        read and their real blocks are handed to the caller (who puts them
        in the stash).  The buckets are left empty.
        """
        blocks: List[Block] = []
        extend = blocks.extend
        path = self.path_indices(leaf)
        if self._treetop_levels:
            path = self._drain_treetop(path, extend)
        buckets = self._buckets
        for index in path:
            bucket = buckets[index]
            if bucket:
                extend(bucket)
                buckets[index] = []
        return blocks

    def read_path_into(self, leaf: int, store: Dict[int, Block]) -> int:
        """Move every real block on the path to ``leaf`` into ``store``.

        Fused variant of :meth:`read_path` for the access hot path: blocks
        are keyed by address directly into the caller's dict (the stash's
        backing store) instead of materializing an intermediate list.
        Returns the number of blocks moved; the path buckets are left empty.
        """
        path = self._path_cache.get(leaf)
        if path is None:
            path = self.path_indices(leaf)
        moved: List[Block] = []
        extend = moved.extend
        if self._treetop_levels:
            path = self._drain_treetop(path, extend)
        # The DRAM-resident suffix (the whole path when no treetop is
        # attached) drains through the original inline loop -- this is the
        # simulator's hottest read loop, kept frame-free at k=0.
        buckets = self._buckets
        for index in path:
            bucket = buckets[index]
            if bucket:
                extend(bucket)
                buckets[index] = []
        # One C-level bulk insert for the whole path instead of a per-block
        # Python loop (zip + attrgetter keep the key extraction in C too).
        store.update(zip(map(_ADDR_OF, moved), moved))
        return len(moved)

    def _drain_treetop(self, path: Sequence[int], extend) -> Sequence[int]:
        """Empty the pinned prefix of ``path``; return the off-chip suffix.

        The first ``_treetop_levels`` entries of a path vector are exactly
        the pinned levels (heap index ``< 2**k - 1`` iff level ``< k``), so
        the pinned prefix is served from SRAM -- counted as treetop hits --
        and only the returned suffix touches the DRAM-resident buckets.
        """
        split = self._treetop_levels
        cache = self.treetop
        sram = cache.store
        dirty = cache.dirty
        for index in path[:split]:
            bucket = sram[index]
            if bucket:
                extend(bucket)
                sram[index] = []
                dirty[index] = 1
        cache.hits += split
        return path[split:]

    def write_bucket(self, level: int, leaf: int, blocks: List[Block]) -> None:
        """Install ``blocks`` as the content of the bucket at (level, leaf)."""
        self.write_bucket_at(self.bucket_index(level, leaf), blocks)

    def write_bucket_at(self, index: int, blocks: List[Block]) -> None:
        """Install ``blocks`` at a precomputed heap index (hot write-back path).

        The tree takes ownership of the list.  Callers that already hold a
        :meth:`path_indices` vector use this to skip the per-level geometry
        arithmetic of :meth:`write_bucket`.
        """
        if len(blocks) > self.bucket_size:
            raise ValueError(
                f"bucket overflow: {len(blocks)} blocks into a Z={self.bucket_size} bucket"
            )
        if index < self._treetop_buckets:
            cache = self.treetop
            cache.store[index] = blocks
            cache.dirty[index] = 1
        else:
            self._buckets[index] = blocks

    def occupancy(self) -> int:
        """Total number of real blocks currently stored in the tree."""
        total = sum(len(bucket) for bucket in self._buckets[self._treetop_buckets:])
        if self.treetop is not None:
            total += sum(len(bucket) for bucket in self.treetop.store)
        return total

    def iter_blocks(self) -> Iterator[Block]:
        """Iterate over every real block in the tree (for invariant checks).

        Pinned buckets yield their *live* on-chip contents; the stale DRAM
        image of the treetop region is never visible here.
        """
        if self.treetop is not None:
            for bucket in self.treetop.store:
                yield from bucket
        for bucket in self._buckets[self._treetop_buckets:]:
            yield from bucket

    def find(self, addr: int) -> bool:
        """Whether a block with the given address exists anywhere in the tree.

        Linear scan -- used only by tests and invariant checkers, never on
        the simulation hot path.
        """
        return any(block.addr == addr for block in self.iter_blocks())

    def address_index(self) -> Dict[int, int]:
        """One-pass address -> heap-index map over the live tree contents.

        Built once per audit pass and reused across invariant checks (see
        :mod:`repro.faults.fsck`): a consistency audit that checks every
        position-map address against the tree this way costs O(B) total
        instead of the O(N * B) of one :meth:`find` scan per address.
        Duplicate addresses keep the first index seen (the audit detects
        duplicates in its own bucket walk).
        """
        index_of: Dict[int, int] = {}
        for index in range(self.num_buckets):
            for block in self.bucket(index):
                index_of.setdefault(block.addr, index)
        return index_of
