"""The Path ORAM binary tree (paper section 2.2, Figure 1).

The tree is stored heap-style in a flat list of buckets.  Level 0 is the
root; level ``L`` holds the ``2**L`` leaves.  Each bucket holds up to ``Z``
real blocks; slots not occupied by real blocks are implicitly dummy blocks
(the adversary-visible serialization in :mod:`repro.oram.crypto` pads every
bucket to ``Z`` ciphertexts so real and dummy blocks are indistinguishable).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.oram.block import Block


class BinaryTree:
    """Bucketed binary tree with arithmetic path indexing.

    The bucket at level ``l`` on the path to leaf ``s`` has heap index
    ``(1 << l) - 1 + (s >> (levels - l))``: the high ``l`` bits of the leaf
    label select the node within the level.
    """

    def __init__(self, levels: int, bucket_size: int):
        if levels < 1:
            raise ValueError("tree must have at least 1 level below the root")
        if bucket_size < 1:
            raise ValueError("bucket size must be >= 1")
        self.levels = levels
        self.bucket_size = bucket_size
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        self._buckets: List[List[Block]] = [[] for _ in range(self.num_buckets)]

    def bucket_index(self, level: int, leaf: int) -> int:
        """Heap index of the bucket at ``level`` on the path to ``leaf``."""
        return (1 << level) - 1 + (leaf >> (self.levels - level))

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices of the root-to-leaf path, root first."""
        if not 0 <= leaf < self.num_leaves:
            raise ValueError(f"leaf {leaf} out of range [0, {self.num_leaves})")
        return [self.bucket_index(level, leaf) for level in range(self.levels + 1)]

    def bucket(self, index: int) -> List[Block]:
        """The (mutable) list of real blocks in bucket ``index``."""
        return self._buckets[index]

    def read_path(self, leaf: int) -> List[Block]:
        """Remove and return every real block on the path to ``leaf``.

        This is step 2 of the access protocol: all buckets on the path are
        read and their real blocks are handed to the caller (who puts them
        in the stash).  The buckets are left empty.
        """
        blocks: List[Block] = []
        for index in self.path_indices(leaf):
            bucket = self._buckets[index]
            if bucket:
                blocks.extend(bucket)
                self._buckets[index] = []
        return blocks

    def write_bucket(self, level: int, leaf: int, blocks: List[Block]) -> None:
        """Install ``blocks`` as the content of the bucket at (level, leaf)."""
        if len(blocks) > self.bucket_size:
            raise ValueError(
                f"bucket overflow: {len(blocks)} blocks into a Z={self.bucket_size} bucket"
            )
        self._buckets[self.bucket_index(level, leaf)] = blocks

    def occupancy(self) -> int:
        """Total number of real blocks currently stored in the tree."""
        return sum(len(bucket) for bucket in self._buckets)

    def iter_blocks(self) -> Iterator[Block]:
        """Iterate over every real block in the tree (for invariant checks)."""
        for bucket in self._buckets:
            yield from bucket

    def find(self, addr: int) -> bool:
        """Whether a block with the given address exists anywhere in the tree.

        Linear scan -- used only by tests and invariant checkers, never on
        the simulation hot path.
        """
        return any(block.addr == addr for block in self.iter_blocks())
