"""The Path ORAM binary tree (paper section 2.2, Figure 1).

The tree is stored heap-style in a flat list of buckets.  Level 0 is the
root; level ``L`` holds the ``2**L`` leaves.  Each bucket holds up to ``Z``
real blocks; slots not occupied by real blocks are implicitly dummy blocks
(the adversary-visible serialization in :mod:`repro.oram.crypto` pads every
bucket to ``Z`` ciphertexts so real and dummy blocks are indistinguishable).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.oram.block import Block

_ADDR_OF = attrgetter("addr")


class BinaryTree:
    """Bucketed binary tree with arithmetic path indexing.

    The bucket at level ``l`` on the path to leaf ``s`` has heap index
    ``(1 << l) - 1 + (s >> (levels - l))``: the high ``l`` bits of the leaf
    label select the node within the level.  Path index vectors are
    memoized per leaf (the geometry never changes after construction), so
    the per-access ``read_path``/write-back pair never recomputes them.
    """

    def __init__(self, levels: int, bucket_size: int):
        if levels < 1:
            raise ValueError("tree must have at least 1 level below the root")
        if bucket_size < 1:
            raise ValueError("bucket size must be >= 1")
        self.levels = levels
        self.bucket_size = bucket_size
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        self._buckets: List[List[Block]] = [[] for _ in range(self.num_buckets)]
        self._path_cache: Dict[int, Tuple[int, ...]] = {}

    def bucket_index(self, level: int, leaf: int) -> int:
        """Heap index of the bucket at ``level`` on the path to ``leaf``."""
        return (1 << level) - 1 + (leaf >> (self.levels - level))

    def path_indices(self, leaf: int) -> Sequence[int]:
        """Heap indices of the root-to-leaf path, root first (memoized)."""
        path = self._path_cache.get(leaf)
        if path is None:
            if not 0 <= leaf < self.num_leaves:
                raise ValueError(f"leaf {leaf} out of range [0, {self.num_leaves})")
            levels = self.levels
            path = tuple(
                (1 << level) - 1 + (leaf >> (levels - level))
                for level in range(levels + 1)
            )
            self._path_cache[leaf] = path
        return path

    def bucket(self, index: int) -> List[Block]:
        """The (mutable) list of real blocks in bucket ``index``."""
        return self._buckets[index]

    def read_path(self, leaf: int) -> List[Block]:
        """Remove and return every real block on the path to ``leaf``.

        This is step 2 of the access protocol: all buckets on the path are
        read and their real blocks are handed to the caller (who puts them
        in the stash).  The buckets are left empty.
        """
        blocks: List[Block] = []
        buckets = self._buckets
        for index in self.path_indices(leaf):
            bucket = buckets[index]
            if bucket:
                blocks.extend(bucket)
                buckets[index] = []
        return blocks

    def read_path_into(self, leaf: int, store: Dict[int, Block]) -> int:
        """Move every real block on the path to ``leaf`` into ``store``.

        Fused variant of :meth:`read_path` for the access hot path: blocks
        are keyed by address directly into the caller's dict (the stash's
        backing store) instead of materializing an intermediate list.
        Returns the number of blocks moved; the path buckets are left empty.
        """
        buckets = self._buckets
        path = self._path_cache.get(leaf)
        if path is None:
            path = self.path_indices(leaf)
        moved: List[Block] = []
        extend = moved.extend
        for index in path:
            bucket = buckets[index]
            if bucket:
                extend(bucket)
                buckets[index] = []
        # One C-level bulk insert for the whole path instead of a per-block
        # Python loop (zip + attrgetter keep the key extraction in C too).
        store.update(zip(map(_ADDR_OF, moved), moved))
        return len(moved)

    def write_bucket(self, level: int, leaf: int, blocks: List[Block]) -> None:
        """Install ``blocks`` as the content of the bucket at (level, leaf)."""
        self.write_bucket_at(self.bucket_index(level, leaf), blocks)

    def write_bucket_at(self, index: int, blocks: List[Block]) -> None:
        """Install ``blocks`` at a precomputed heap index (hot write-back path).

        The tree takes ownership of the list.  Callers that already hold a
        :meth:`path_indices` vector use this to skip the per-level geometry
        arithmetic of :meth:`write_bucket`.
        """
        if len(blocks) > self.bucket_size:
            raise ValueError(
                f"bucket overflow: {len(blocks)} blocks into a Z={self.bucket_size} bucket"
            )
        self._buckets[index] = blocks

    def occupancy(self) -> int:
        """Total number of real blocks currently stored in the tree."""
        return sum(len(bucket) for bucket in self._buckets)

    def iter_blocks(self) -> Iterator[Block]:
        """Iterate over every real block in the tree (for invariant checks)."""
        for bucket in self._buckets:
            yield from bucket

    def find(self, addr: int) -> bool:
        """Whether a block with the given address exists anywhere in the tree.

        Linear scan -- used only by tests and invariant checkers, never on
        the simulation hot path.
        """
        return any(block.addr == addr for block in self.iter_blocks())
