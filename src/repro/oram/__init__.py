"""Path ORAM substrate (paper sections 2.2-2.6).

This package implements the functional Path ORAM the paper builds on:

* :mod:`repro.oram.block` / :mod:`repro.oram.tree` / :mod:`repro.oram.stash`
  -- the binary-tree storage, buckets of ``Z`` blocks, and the on-chip stash.
* :mod:`repro.oram.position_map` -- the position map, including the PosMap
  block layout that carries the merge/break/prefetch bits used by PrORAM.
* :mod:`repro.oram.path_oram` -- the five-step access protocol plus
  background eviction.
* :mod:`repro.oram.recursion` -- recursive/unified ORAM accounting with an
  on-chip PosMap block cache.
* :mod:`repro.oram.super_block` -- the super block invariant and the prior
  art *static* super block scheme (section 3).
* :mod:`repro.oram.crypto` / :mod:`repro.oram.kv_store` -- probabilistic
  encryption and a functional oblivious key-value store built on the tree.
"""

from repro.oram.block import Block
from repro.oram.integrity import IntegrityViolationError, MerkleTree, VerifiedPathORAM
from repro.oram.path_oram import PathORAM
from repro.oram.position_map import PositionMap
from repro.oram.recursion import PosMapHierarchy
from repro.oram.ring_oram import RingORAM
from repro.oram.square_root import SquareRootORAM
from repro.oram.stash import Stash
from repro.oram.super_block import (
    BaselineScheme,
    PrefetchTracker,
    StaticSuperBlockScheme,
    SuperBlockScheme,
)
from repro.oram.tree import BinaryTree
from repro.oram.tree_oram import ShiTreeORAM

__all__ = [
    "BaselineScheme",
    "BinaryTree",
    "Block",
    "IntegrityViolationError",
    "MerkleTree",
    "PathORAM",
    "PosMapHierarchy",
    "PositionMap",
    "PrefetchTracker",
    "RingORAM",
    "ShiTreeORAM",
    "SquareRootORAM",
    "Stash",
    "StaticSuperBlockScheme",
    "SuperBlockScheme",
    "VerifiedPathORAM",
]
