"""Probabilistic encryption for ORAM blocks (paper section 2.1).

"Data stored in ORAMs should be encrypted using probabilistic encryption to
conceal the data content and also hide which memory location, if any, is
updated."  This module provides the encryption layer the functional store
and the adversary-facing bucket serialization use.

The cipher is a keystream XOR keyed by SHA-256 over (key, nonce, counter).
Every encryption draws a fresh random nonce, so encrypting the same
plaintext twice yields unrelated ciphertexts, and dummy blocks (random
bytes) are indistinguishable from real ones.  This is a *simulation
stand-in* for hardware AES-CTR -- adequate for the reproduction's security
experiments, NOT a vetted cryptographic implementation.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional, Tuple

from repro.utils.rng import DeterministicRng

NONCE_BYTES = 16


class ProbabilisticCipher:
    """Nonce-randomized XOR-keystream cipher over fixed-size blocks."""

    def __init__(self, key: bytes, rng: Optional[DeterministicRng] = None):
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = key
        self._rng = rng or DeterministicRng(0xC0FFEE)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            out.extend(
                hashlib.sha256(self._key + nonce + struct.pack("<Q", counter)).digest()
            )
            counter += 1
        return bytes(out[:length])

    def random_nonce(self) -> bytes:
        return self._rng.getrandbits(NONCE_BYTES * 8).to_bytes(NONCE_BYTES, "little")

    def encrypt(self, plaintext: bytes, nonce: Optional[bytes] = None) -> bytes:
        """Encrypt with a fresh random nonce; returns nonce || ciphertext."""
        if nonce is None:
            nonce = self.random_nonce()
        if len(nonce) != NONCE_BYTES:
            raise ValueError(f"nonce must be {NONCE_BYTES} bytes")
        stream = self._keystream(nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        return nonce + body

    def decrypt(self, blob: bytes) -> bytes:
        """Invert :meth:`encrypt`."""
        if len(blob) < NONCE_BYTES:
            raise ValueError("ciphertext too short to contain a nonce")
        nonce, body = blob[:NONCE_BYTES], blob[NONCE_BYTES:]
        stream = self._keystream(nonce, len(body))
        return bytes(c ^ s for c, s in zip(body, stream))


#: Header prepended to real blocks inside a bucket image: (addr, leaf).
_BLOCK_HEADER = struct.Struct("<qq")
_DUMMY_ADDR = -1


def seal_block(
    cipher: ProbabilisticCipher, addr: int, leaf: int, data: bytes, block_bytes: int
) -> bytes:
    """Serialize and encrypt one real block for the untrusted tree."""
    if len(data) > block_bytes:
        raise ValueError("payload larger than block size")
    plain = _BLOCK_HEADER.pack(addr, leaf) + data.ljust(block_bytes, b"\0")
    return cipher.encrypt(plain)


def seal_dummy(cipher: ProbabilisticCipher, block_bytes: int) -> bytes:
    """Encrypted dummy block, indistinguishable from a real one."""
    plain = _BLOCK_HEADER.pack(_DUMMY_ADDR, 0) + b"\0" * block_bytes
    return cipher.encrypt(plain)


def open_block(
    cipher: ProbabilisticCipher, blob: bytes, block_bytes: int
) -> Optional[Tuple[int, int, bytes]]:
    """Decrypt a bucket slot; ``None`` for dummies, else (addr, leaf, data)."""
    plain = cipher.decrypt(blob)
    addr, leaf = _BLOCK_HEADER.unpack_from(plain)
    if addr == _DUMMY_ADDR:
        return None
    return addr, leaf, plain[_BLOCK_HEADER.size : _BLOCK_HEADER.size + block_bytes]


def seal_bucket(
    cipher: ProbabilisticCipher,
    blocks,
    bucket_size: int,
    block_bytes: int,
) -> list:
    """Adversary-visible image of one bucket: always ``Z`` ciphertexts.

    Buckets with fewer than ``Z`` real blocks are padded with encrypted
    dummies (section 2.2), so the slot count leaks nothing.
    """
    if len(blocks) > bucket_size:
        raise ValueError("too many real blocks for bucket")
    image = [
        seal_block(cipher, block.addr, block.leaf, block.data or b"", block_bytes)
        for block in blocks
    ]
    while len(image) < bucket_size:
        image.append(seal_dummy(cipher, block_bytes))
    return image
