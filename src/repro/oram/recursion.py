"""Recursive / Unified ORAM accounting (paper sections 2.3 and 2.6).

In practice the position map is too large to keep on-chip, so it is stored
in further ORAMs: the data ORAM's position map lives in PosMap ORAM 1,
whose position map lives in PosMap ORAM 2, and so on; with
``num_hierarchies = 4`` (Table 1) the final, tiny position map is on-chip.

The baseline the paper uses is *Unified ORAM* (Fletcher et al., ASPLOS'15):
data and PosMap blocks share one binary tree, and an on-chip cache of
PosMap blocks (a "PosMap Lookaside Buffer") exploits the locality of
position-map accesses the way a TLB exploits page-table locality.  An
access that finds its PosMap block cached costs a single path access; each
consecutive miss walking up the hierarchy costs one more path access in the
same tree.

This module models exactly that quantity -- how many *path accesses* a
request needs -- without physically storing PosMap blocks in the functional
tree (their stash interaction is second-order; the paper's performance
effects come from the access count and latency, which we reproduce).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.utils.bitops import log2_exact


class PosMapHierarchy:
    """On-chip PosMap block cache plus hierarchy walk accounting.

    Args:
        num_hierarchies: total ORAM hierarchies including the data ORAM
            (Table 1: 4, i.e. three PosMap levels behind the data tree).
        entries_per_block: position map entries per PosMap block (32).
        cache_entries: capacity of the on-chip PosMap block cache.
    """

    def __init__(self, num_hierarchies: int, entries_per_block: int, cache_entries: int):
        if num_hierarchies < 1:
            raise ValueError("need at least the data ORAM hierarchy")
        self.num_hierarchies = num_hierarchies
        self.entries_per_block = entries_per_block
        self._shift = log2_exact(entries_per_block)
        self.cache_entries = cache_entries
        # Keys are (hierarchy << 56) | block_id -- see :meth:`lookup`.
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        # Statistics
        self.lookups = 0
        self.posmap_block_accesses = 0
        self.cache_hits = 0

    def posmap_block_ids(self, addr: int) -> List[tuple]:
        """(hierarchy, block id) keys for the PosMap blocks covering ``addr``.

        Entry 0 is the level-1 PosMap block (the one holding the data
        block's leaf), entry 1 the level-2 block, and so on.
        """
        ids = []
        block_id = addr
        for hierarchy in range(1, self.num_hierarchies):
            block_id >>= self._shift
            ids.append((hierarchy, block_id))
        return ids

    def lookup(self, addr: int) -> int:
        """Walk the hierarchy for one request; return *extra* path accesses.

        Returns 0 when the level-1 PosMap block is cached; otherwise the
        number of consecutive uncached levels starting from level 1 (at most
        ``num_hierarchies - 1``; the final position map is always on-chip).
        All PosMap blocks touched by the walk become cached.
        """
        self.lookups += 1
        cache = self._cache
        shift = self._shift
        block_id = addr
        missed = []
        for hierarchy in range(1, self.num_hierarchies):
            block_id >>= shift
            # Cache keys pack (hierarchy, block id) into one int: int keys
            # hash/compare faster than tuples and this runs per request.
            key = (hierarchy << 56) | block_id
            if key in cache:
                cache.move_to_end(key)
                self.cache_hits += 1
                break
            missed.append(key)
        # Install every block on the walk (they were all brought on-chip).
        for key in missed:
            self._insert(key)
        extra = len(missed)
        self.posmap_block_accesses += extra
        return extra

    def _insert(self, key: int) -> None:
        if self.cache_entries <= 0:
            return  # cache disabled: plain recursive ORAM, every walk full
        if key in self._cache:
            self._cache.move_to_end(key)
            return
        self._cache[key] = None
        while len(self._cache) > self.cache_entries:
            self._cache.popitem(last=False)

    def hit_rate(self) -> float:
        """Fraction of lookups whose level-1 PosMap block was cached."""
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups

    def average_extra_accesses(self) -> float:
        """Mean extra path accesses per request so far."""
        if self.lookups == 0:
            return 0.0
        return self.posmap_block_accesses / self.lookups
