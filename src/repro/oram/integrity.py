"""Integrity verification for the Path ORAM tree (Merkle tree over buckets).

The paper's threat model assumes a *curious* adversary, but the secure
processors it targets (Aegis, Ascend; cf. the Freecursive ORAM baseline,
section 2.3) also verify that untrusted memory is *authentic*: a tampering
adversary must not be able to substitute stale or forged buckets.  The
textbook construction maps perfectly onto the ORAM tree: each node stores a
hash of its bucket's (encrypted) content concatenated with its children's
hashes, the root hash lives on-chip, and -- crucially -- verifying or
updating any path touches exactly the buckets a Path ORAM access already
reads and writes, so integrity adds **no extra memory accesses**.

This module implements that Merkle layer over the functional tree plus a
verifying wrapper used by tests and the oblivious store.  Like the cipher,
the hash is real (SHA-256) but the layer exists for fidelity, not as a
hardened security product.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.oram.path_oram import PathORAM
from repro.oram.tree import BinaryTree


class IntegrityViolationError(RuntimeError):
    """A path failed verification against the trusted root hash."""


def _hash_node(payload: bytes, left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(payload + left + right).digest()


_LEAF_CHILD = b"\x00" * 32


class MerkleTree:
    """Hash tree mirroring the ORAM tree's heap layout.

    The ORAM controller calls :meth:`update_path` during every path
    write-back and :meth:`verify_path` during every path read; both walk
    only the accessed path (plus sibling hashes, which in hardware ride the
    same DRAM burst as the buckets).
    """

    def __init__(self, tree: BinaryTree):
        self._tree = tree
        self._hashes: List[bytes] = [b""] * tree.num_buckets
        # Build bottom-up so the root reflects the populated tree.
        for index in range(tree.num_buckets - 1, -1, -1):
            self._hashes[index] = self._compute(index)

    # ------------------------------------------------------------ internals
    def _bucket_payload(self, index: int) -> bytes:
        """Deterministic digest input for one bucket's logical content.

        Hardware hashes the ciphertexts it wrote; the simulator's buckets
        hold plaintext block objects, so we hash their canonical
        serialization instead (addr, leaf, payload), which detects exactly
        the same substitutions.
        """
        parts = []
        for block in sorted(self._tree.bucket(index), key=lambda b: b.addr):
            parts.append(
                block.addr.to_bytes(8, "little", signed=True)
                + block.leaf.to_bytes(8, "little")
                + (block.data or b"")
            )
        return b"|".join(parts)

    def _children(self, index: int) -> tuple:
        left = 2 * index + 1
        right = 2 * index + 2
        if left >= self._tree.num_buckets:
            return _LEAF_CHILD, _LEAF_CHILD
        return self._hashes[left], self._hashes[right]

    def _compute(self, index: int) -> bytes:
        left, right = self._children(index)
        return _hash_node(self._bucket_payload(index), left, right)

    # ------------------------------------------------------------------ API
    @property
    def root(self) -> bytes:
        """The on-chip trusted root hash."""
        return self._hashes[0]

    def update_path(self, leaf: int) -> None:
        """Recompute the hashes along one path, leaf to root (write-back)."""
        for index in reversed(self._tree.path_indices(leaf)):
            self._hashes[index] = self._compute(index)

    def verify_path(self, leaf: int) -> None:
        """Check one path against the trusted root.

        Walks from the leaf up, recomputing each node from the bucket
        content and the (untrusted but self-certifying) child hashes.

        Raises:
            IntegrityViolationError: if any node's stored hash or the root
            does not match the recomputation.
        """
        for index in reversed(self._tree.path_indices(leaf)):
            expected = self._compute(index)
            if expected != self._hashes[index]:
                raise IntegrityViolationError(
                    f"bucket {index} hash mismatch on path to leaf {leaf}"
                )
        # The path's root recomputation equals the stored root by the loop
        # above (index 0 is on every path); nothing further to check.

    def verify_all(self) -> None:
        """Full-tree audit (tests only)."""
        for index in range(self._tree.num_buckets - 1, -1, -1):
            if self._compute(index) != self._hashes[index]:
                raise IntegrityViolationError(f"bucket {index} hash mismatch")

    # ------------------------------------------------------------ tampering
    def stored_hash(self, index: int) -> bytes:
        """Adversary-visible stored hash (tests simulate tampering)."""
        return self._hashes[index]

    def overwrite_hash(self, index: int, value: bytes) -> None:
        """Simulate an adversary rewriting a stored hash (tests)."""
        self._hashes[index] = value


class VerifiedPathORAM(PathORAM):
    """Path ORAM with Merkle verification on every path touch.

    Every path read is verified against the trusted root before the blocks
    enter the stash, and every path write refreshes the hashes -- at zero
    extra memory accesses, since the Merkle nodes ride the path.

    An optional :class:`~repro.faults.injector.FaultInjector` models the
    untrusted storage misbehaving: it runs immediately before each path
    verification, so whatever it corrupts is subjected to exactly the check
    the hardware would apply.  Detection then surfaces as
    :class:`IntegrityViolationError` to the resilient access path, which
    escalates to checkpoint recovery (see :mod:`repro.faults.resilient`).
    """

    def __init__(self, *args, injector=None, **kwargs):
        self.injector = injector
        self.injected_delay_cycles = 0
        super().__init__(*args, **kwargs)
        self.merkle = MerkleTree(self.tree)
        self.verified_paths = 0

    def populate(self) -> None:  # rebuild hashes once blocks are installed
        super().populate()
        self.merkle = MerkleTree(self.tree)

    def rebuild_auxiliary(self) -> None:
        """Recompute the hash tree after a checkpoint restore installed state."""
        self.merkle = MerkleTree(self.tree)

    def _before_path_read(self, leaf: int) -> None:
        if self.injector is not None:
            self.injected_delay_cycles += self.injector.on_path_read(self.tree, leaf)
        self.merkle.verify_path(leaf)
        self.verified_paths += 1

    def _after_path_write(self, leaf: int) -> None:
        self.merkle.update_path(leaf)
