"""Checkpoint / restore for the functional Path ORAM and the KV store.

A deployable oblivious store must survive restarts: the *untrusted* tree
lives in external storage anyway, and the trusted state (position map,
stash, counters bits) would persist in sealed NVRAM.  This module
serializes both halves of the simulator's state to a portable JSON
document and restores a behaviourally identical ORAM.

Serialized state: geometry, position map (leaves + merge/break/prefetch
bits), every bucket's blocks (address, leaf, optional payload), the stash,
and access counters.  RNG state is intentionally *not* captured -- a
restored ORAM continues with fresh randomness, exactly like a rebooted
device, and stays oblivious.

Robustness guarantees (the recovery subsystem depends on both):

* :func:`save_oram` is crash-safe: the document is written to a temporary
  file in the target directory and atomically renamed over the
  destination, so a failure mid-save can never clobber the last good
  checkpoint.
* :func:`load_oram` validates everything it reads and reports problems as
  :class:`CheckpointError` with a descriptive message -- a malformed or
  mismatched document never surfaces bare ``KeyError``/``TypeError``
  internals.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import tempfile
from typing import Callable, Optional

from repro.config import ORAMConfig
from repro.oram.block import Block
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint document is malformed or inconsistent with its config."""


def _encode_block(block: Block) -> dict:
    out = {"a": block.addr, "l": block.leaf}
    if block.data is not None:
        out["d"] = base64.b64encode(block.data).decode("ascii")
    return out


def _decode_block(raw: dict, where: str) -> Block:
    try:
        data = base64.b64decode(raw["d"]) if "d" in raw else None
        return Block(raw["a"], raw["l"], data)
    except (KeyError, TypeError, binascii.Error) as exc:
        raise CheckpointError(f"malformed block record in {where}: {exc!r}") from exc


def dump_oram(oram: PathORAM) -> str:
    """Serialize a Path ORAM to a JSON string."""
    if oram._pending_writeback is not None:
        raise RuntimeError("cannot checkpoint mid-access")
    config = oram.config
    posmap = oram.position_map
    n = posmap.num_blocks
    state = {
        "version": FORMAT_VERSION,
        "config": {
            "levels": config.levels,
            "bucket_size": config.bucket_size,
            "stash_blocks": config.stash_blocks,
            "utilization": config.utilization,
            "block_bytes": config.block_bytes,
            "capacity_bytes": config.capacity_bytes,
            "num_hierarchies": config.num_hierarchies,
            "max_super_block_size": config.max_super_block_size,
            "posmap_entries_per_block": config.posmap_entries_per_block,
            "posmap_cache_entries": config.posmap_cache_entries,
        },
        "leaves": [posmap.leaf(a) for a in range(n)],
        "merge_bits": [posmap.merge_bit(a) for a in range(n)],
        "break_bits": [posmap.break_bit(a) for a in range(n)],
        "prefetch_bits": [posmap.prefetch_bit(a) for a in range(n)],
        "buckets": [
            [_encode_block(b) for b in oram.tree.bucket(i)]
            for i in range(oram.tree.num_buckets)
        ],
        "stash": [_encode_block(b) for b in oram.stash.iter_blocks()],
        "counters": {
            "real_accesses": oram.real_accesses,
            "dummy_accesses": oram.dummy_accesses,
            "stash_soft_overflows": oram.stash_soft_overflows,
        },
    }
    return json.dumps(state)


_REQUIRED_KEYS = (
    "config",
    "leaves",
    "merge_bits",
    "break_bits",
    "prefetch_bits",
    "buckets",
    "stash",
    "counters",
)


def load_oram(
    payload: str,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    oram_factory: Optional[Callable[..., PathORAM]] = None,
) -> PathORAM:
    """Restore a Path ORAM from :func:`dump_oram` output.

    Args:
        payload: the JSON document.
        rng: fresh randomness for the restored instance (a new seed is
            fine -- and preferable, see the module docstring).
        observer: optional adversary observer to attach.
        oram_factory: optional constructor with the :class:`PathORAM`
            signature ``factory(config, rng, observer=..., populate=...)``;
            lets callers restore into a subclass (the Merkle-verified ORAM
            of the recovery path).  Derived structures are rebuilt via
            :meth:`PathORAM.rebuild_auxiliary` after the state is
            installed.

    Raises:
        CheckpointError: the document is malformed, from an unsupported
            version, or inconsistent with its own geometry.
    """
    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"malformed checkpoint document: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"malformed checkpoint document: expected an object, "
            f"got {type(state).__name__}"
        )
    if state.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in state]
    if missing:
        raise CheckpointError(f"checkpoint document missing keys: {missing}")
    try:
        config = ORAMConfig(**state["config"])
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid checkpoint geometry: {exc}") from exc
    factory = oram_factory or PathORAM
    oram = factory(config, rng or DeterministicRng(0xC8C8), observer=observer, populate=False)
    oram._populated = True  # state arrives fully formed
    posmap = oram.position_map
    n = posmap.num_blocks
    for name in ("leaves", "merge_bits", "break_bits", "prefetch_bits"):
        if len(state[name]) != n:
            raise CheckpointError(
                f"checkpoint holds {len(state[name])} {name}, "
                f"config implies {n} blocks"
            )
    try:
        for addr in range(n):
            posmap.set_leaf(addr, state["leaves"][addr])
            posmap.set_merge_bit(addr, state["merge_bits"][addr])
            posmap.set_break_bit(addr, state["break_bits"][addr])
            posmap.set_prefetch_bit(addr, state["prefetch_bits"][addr])
    except (TypeError, ValueError, OverflowError) as exc:
        raise CheckpointError(f"invalid position map entry: {exc}") from exc
    if len(state["buckets"]) != oram.tree.num_buckets:
        raise CheckpointError(
            f"checkpoint holds {len(state['buckets'])} buckets, "
            f"tree geometry implies {oram.tree.num_buckets}"
        )
    for index, raw_bucket in enumerate(state["buckets"]):
        oram.tree._buckets[index] = [
            _decode_block(raw, f"bucket {index}") for raw in raw_bucket
        ]
    if len(state["stash"]) > config.stash_blocks:
        raise CheckpointError(
            f"checkpoint stash holds {len(state['stash'])} blocks, "
            f"configured stash capacity is {config.stash_blocks}"
        )
    for raw in state["stash"]:
        oram.stash.add(_decode_block(raw, "stash"))
    counters = state["counters"]
    try:
        oram.real_accesses = counters["real_accesses"]
        oram.dummy_accesses = counters["dummy_accesses"]
        oram.stash_soft_overflows = counters["stash_soft_overflows"]
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed checkpoint counters: {exc!r}") from exc
    oram.rebuild_auxiliary()
    try:
        oram.check_invariants()
    except AssertionError as exc:
        raise CheckpointError(f"checkpoint violates ORAM invariants: {exc}") from exc
    return oram


def _atomic_write(path: str, payload: str) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + rename.

    ``os.replace`` is atomic on POSIX and Windows, so a crash (or raised
    exception) at any point leaves either the old file or the new file --
    never a torn mixture.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_oram(oram: PathORAM, path: str) -> None:
    """Write a checkpoint file crash-safely (temp file + atomic rename)."""
    _atomic_write(path, dump_oram(oram))


def restore_oram(
    path: str,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    oram_factory: Optional[Callable[..., PathORAM]] = None,
) -> PathORAM:
    """Read a checkpoint file."""
    with open(path) as handle:
        return load_oram(
            handle.read(), rng=rng, observer=observer, oram_factory=oram_factory
        )
