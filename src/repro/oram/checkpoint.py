"""Checkpoint / restore for the functional Path ORAM and the KV store.

A deployable oblivious store must survive restarts: the *untrusted* tree
lives in external storage anyway, and the trusted state (position map,
stash, counters bits) would persist in sealed NVRAM.  This module
serializes both halves of the simulator's state to a portable JSON
document and restores a behaviourally identical ORAM.

Serialized state: geometry, position map (leaves + merge/break/prefetch
bits), every bucket's blocks (address, leaf, optional payload), the stash,
and access counters.  RNG state is intentionally *not* captured -- a
restored ORAM continues with fresh randomness, exactly like a rebooted
device, and stays oblivious.

Robustness guarantees (the recovery subsystem depends on both):

* :func:`save_oram` is crash-safe: the document is written to a temporary
  file in the target directory and atomically renamed over the
  destination, so a failure mid-save can never clobber the last good
  checkpoint.
* :func:`load_oram` validates everything it reads and reports problems as
  :class:`CheckpointError` with a descriptive message -- a malformed or
  mismatched document never surfaces bare ``KeyError``/``TypeError``
  internals.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import tempfile
from typing import Callable, Optional

from repro.config import ORAMConfig
from repro.oram.block import Block
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint document is malformed or inconsistent with its config."""


def _encode_block(block: Block) -> dict:
    out = {"a": block.addr, "l": block.leaf}
    if block.data is not None:
        out["d"] = base64.b64encode(block.data).decode("ascii")
    return out


def _decode_block(raw: dict, where: str) -> Block:
    try:
        data = base64.b64decode(raw["d"]) if "d" in raw else None
        return Block(raw["a"], raw["l"], data)
    except (KeyError, TypeError, binascii.Error) as exc:
        raise CheckpointError(f"malformed block record in {where}: {exc!r}") from exc


def _oram_state_dict(oram: PathORAM) -> dict:
    """The checkpoint document of one Path ORAM, as a plain dict."""
    if oram._pending_writeback is not None:
        raise RuntimeError("cannot checkpoint mid-access")
    config = oram.config
    posmap = oram.position_map
    n = posmap.num_blocks
    state = {
        "version": FORMAT_VERSION,
        "config": {
            "levels": config.levels,
            "bucket_size": config.bucket_size,
            "stash_blocks": config.stash_blocks,
            "utilization": config.utilization,
            "block_bytes": config.block_bytes,
            "capacity_bytes": config.capacity_bytes,
            "num_hierarchies": config.num_hierarchies,
            "max_super_block_size": config.max_super_block_size,
            "posmap_entries_per_block": config.posmap_entries_per_block,
            "posmap_cache_entries": config.posmap_cache_entries,
            "treetop_levels": config.treetop_levels,
        },
        "leaves": [posmap.leaf(a) for a in range(n)],
        "merge_bits": [posmap.merge_bit(a) for a in range(n)],
        "break_bits": [posmap.break_bit(a) for a in range(n)],
        "prefetch_bits": [posmap.prefetch_bit(a) for a in range(n)],
        "buckets": [
            [_encode_block(b) for b in oram.tree.bucket(i)]
            for i in range(oram.tree.num_buckets)
        ],
        "stash": [_encode_block(b) for b in oram.stash.iter_blocks()],
        "counters": {
            "real_accesses": oram.real_accesses,
            "dummy_accesses": oram.dummy_accesses,
            "stash_soft_overflows": oram.stash_soft_overflows,
        },
    }
    cache = oram.tree.treetop
    if cache is not None:
        # "buckets" above already carries the *live* contents (bucket()
        # reads through the on-chip store); this section additionally
        # captures the stale off-chip image and the dirty set so a restore
        # reproduces the exact write-back state.
        state["treetop"] = {
            "levels": cache.levels,
            "dirty": [i for i in range(cache.num_buckets) if cache.dirty[i]],
            "image": [
                [_encode_block(b) for b in oram.tree._buckets[i]]
                for i in range(cache.num_buckets)
            ],
            "hits": cache.hits,
            "flushes": cache.flushes,
            "flushed_buckets": cache.flushed_buckets,
        }
    return state


def dump_oram(oram: PathORAM) -> str:
    """Serialize a Path ORAM to a JSON string."""
    return json.dumps(_oram_state_dict(oram))


_REQUIRED_KEYS = (
    "config",
    "leaves",
    "merge_bits",
    "break_bits",
    "prefetch_bits",
    "buckets",
    "stash",
    "counters",
)


def load_oram(
    payload: str,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    oram_factory: Optional[Callable[..., PathORAM]] = None,
) -> PathORAM:
    """Restore a Path ORAM from :func:`dump_oram` output.

    Args:
        payload: the JSON document.
        rng: fresh randomness for the restored instance (a new seed is
            fine -- and preferable, see the module docstring).
        observer: optional adversary observer to attach.
        oram_factory: optional constructor with the :class:`PathORAM`
            signature ``factory(config, rng, observer=..., populate=...)``;
            lets callers restore into a subclass (the Merkle-verified ORAM
            of the recovery path).  Derived structures are rebuilt via
            :meth:`PathORAM.rebuild_auxiliary` after the state is
            installed.

    Raises:
        CheckpointError: the document is malformed, from an unsupported
            version, or inconsistent with its own geometry.
    """
    state = _parse_oram_state(payload)
    config = _checkpoint_config(state)
    factory = oram_factory or PathORAM
    oram = factory(config, rng or DeterministicRng(0xC8C8), observer=observer, populate=False)
    _install_oram_state(oram, state)
    return oram


def _parse_oram_state(payload: str) -> dict:
    """Parse + shape-validate a checkpoint document (JSON string or dict)."""
    if isinstance(payload, dict):
        state = payload
    else:
        try:
            state = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"malformed checkpoint document: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"malformed checkpoint document: expected an object, "
            f"got {type(state).__name__}"
        )
    if state.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in state]
    if missing:
        raise CheckpointError(f"checkpoint document missing keys: {missing}")
    return state


def _checkpoint_config(state: dict) -> ORAMConfig:
    try:
        return ORAMConfig(**state["config"])
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid checkpoint geometry: {exc}") from exc


def _install_oram_state(oram: PathORAM, state: dict) -> None:
    """Overwrite an ORAM instance's state with a validated checkpoint.

    Works both on a freshly constructed, unpopulated instance (the
    :func:`load_oram` path) and in place on a live, populated one (the
    worker-recovery path): the position map, every bucket, the stash, and
    the counters are replaced wholesale, and derived structures are rebuilt
    via :meth:`PathORAM.rebuild_auxiliary`.  The position map's backing
    arrays are written in place -- components holding direct references to
    them (e.g. the super block scheme's prefetch-bit handle) stay valid.
    """
    oram._populated = True  # state arrives fully formed
    posmap = oram.position_map
    n = posmap.num_blocks
    for name in ("leaves", "merge_bits", "break_bits", "prefetch_bits"):
        if len(state[name]) != n:
            raise CheckpointError(
                f"checkpoint holds {len(state[name])} {name}, "
                f"config implies {n} blocks"
            )
    try:
        for addr in range(n):
            posmap.set_leaf(addr, state["leaves"][addr])
            posmap.set_merge_bit(addr, state["merge_bits"][addr])
            posmap.set_break_bit(addr, state["break_bits"][addr])
            posmap.set_prefetch_bit(addr, state["prefetch_bits"][addr])
    except (TypeError, ValueError, OverflowError) as exc:
        raise CheckpointError(f"invalid position map entry: {exc}") from exc
    if len(state["buckets"]) != oram.tree.num_buckets:
        raise CheckpointError(
            f"checkpoint holds {len(state['buckets'])} buckets, "
            f"tree geometry implies {oram.tree.num_buckets}"
        )
    for index, raw_bucket in enumerate(state["buckets"]):
        blocks = [_decode_block(raw, f"bucket {index}") for raw in raw_bucket]
        try:
            # Routed through the tree so pinned indices land in the
            # treetop store (and are marked dirty -- conservative for
            # documents predating the treetop section).
            oram.tree.write_bucket_at(index, blocks)
        except ValueError as exc:
            raise CheckpointError(f"bucket {index}: {exc}") from exc
    _install_treetop_state(oram, state)
    if len(state["stash"]) > oram.config.stash_blocks:
        raise CheckpointError(
            f"checkpoint stash holds {len(state['stash'])} blocks, "
            f"configured stash capacity is {oram.config.stash_blocks}"
        )
    oram.stash._blocks.clear()
    for raw in state["stash"]:
        oram.stash.add(_decode_block(raw, "stash"))
    counters = state["counters"]
    try:
        oram.real_accesses = counters["real_accesses"]
        oram.dummy_accesses = counters["dummy_accesses"]
        oram.stash_soft_overflows = counters["stash_soft_overflows"]
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed checkpoint counters: {exc!r}") from exc
    oram.rebuild_auxiliary()
    try:
        oram.check_invariants()
    except AssertionError as exc:
        raise CheckpointError(f"checkpoint violates ORAM invariants: {exc}") from exc


def _install_treetop_state(oram: PathORAM, state: dict) -> None:
    """Restore the treetop's off-chip image, dirty set, and counters.

    Documents without a ``treetop`` section (pre-treetop captures, or
    captures taken at ``treetop_levels=0``) leave the conservative state
    the bucket install produced: every pinned bucket dirty, counters
    zero -- a later flush reconverges the image.
    """
    cache = oram.tree.treetop
    saved = state.get("treetop")
    if cache is None or saved is None:
        return
    try:
        if saved["levels"] != cache.levels:
            raise CheckpointError(
                f"checkpoint treetop pins {saved['levels']} levels, "
                f"config implies {cache.levels}"
            )
        image = saved["image"]
        if len(image) != cache.num_buckets:
            raise CheckpointError(
                f"checkpoint treetop image holds {len(image)} buckets, "
                f"geometry implies {cache.num_buckets}"
            )
        for index, raw_bucket in enumerate(image):
            oram.tree._buckets[index] = [
                _decode_block(raw, f"treetop image bucket {index}")
                for raw in raw_bucket
            ]
        dirty = bytearray(cache.num_buckets)
        for index in saved["dirty"]:
            if not 0 <= index < cache.num_buckets:
                raise CheckpointError(
                    f"treetop dirty index {index} out of range "
                    f"[0, {cache.num_buckets})"
                )
            dirty[index] = 1
        cache.dirty = dirty
        cache.hits = int(saved["hits"])
        cache.flushes = int(saved["flushes"])
        cache.flushed_buckets = int(saved["flushed_buckets"])
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed treetop section: {exc!r}") from exc


def _atomic_write(path: str, payload: str) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + rename.

    ``os.replace`` is atomic on POSIX and Windows, so a crash (or raised
    exception) at any point leaves either the old file or the new file --
    never a torn mixture.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_oram(oram: PathORAM, path: str) -> None:
    """Write a checkpoint file crash-safely (temp file + atomic rename)."""
    _atomic_write(path, dump_oram(oram))


def restore_oram(
    path: str,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    oram_factory: Optional[Callable[..., PathORAM]] = None,
) -> PathORAM:
    """Read a checkpoint file."""
    with open(path) as handle:
        return load_oram(
            handle.read(), rng=rng, observer=observer, oram_factory=oram_factory
        )


# --------------------------------------------------------------------------
# Backend-level checkpoints (the parallel shard runtime's recovery unit)
# --------------------------------------------------------------------------
#
# A :class:`~repro.memory.oram_backend.ORAMBackend` is more than its ORAM:
# the merged SimResult also draws on the backend's counters, the scheme's
# statistics, the PosMap hierarchy's cache accounting, the pipeline's
# per-phase attribution, and ``busy_until``.  A shard worker checkpoints
# all of it so a respawned worker resumes accounting exactly where the
# dead one stopped.  What is deliberately *not* captured (and therefore
# resets on recovery, exactly like a rebooted device): RNG state, the
# adaptive threshold policy's training state, and the prefetch tracker's
# block-side hit bits -- none of them affect correctness, only warm-up.

BACKEND_FORMAT_VERSION = 1

#: BackendStats fields round-tripped through a backend checkpoint.
_BACKEND_STAT_FIELDS = (
    "demand_requests",
    "prefetch_requests",
    "write_accesses",
    "memory_accesses",
    "dummy_accesses",
    "posmap_accesses",
    "busy_cycles",
    "transient_faults",
    "fault_retries",
    "fault_delay_cycles",
    "forced_evictions",
)

_SCHEME_STAT_FIELDS = (
    "merges",
    "breaks",
    "prefetched_blocks",
    "prefetch_hits",
    "prefetch_misses",
)


def dump_backend_state(backend, runtime_state: Optional[dict] = None) -> str:
    """Serialize an ORAM backend (ORAM + every counter) to a JSON string.

    Args:
        backend: the :class:`~repro.memory.oram_backend.ORAMBackend`.
        runtime_state: opaque JSON-serializable extras stored alongside
            (the shard worker keeps its last-applied sequence number and a
            replay window of recent batch replies here).
    """
    hierarchy = backend.posmap_hierarchy
    state = {
        "version": BACKEND_FORMAT_VERSION,
        "kind": "oram-backend",
        "oram": _oram_state_dict(backend.oram),
        "backend": {
            "busy_until": backend.busy_until,
            "stats": {
                name: getattr(backend.stats, name)
                for name in _BACKEND_STAT_FIELDS
            },
            "scheme_stats": {
                name: getattr(backend.scheme.stats, name)
                for name in _SCHEME_STAT_FIELDS
            },
            "posmap_hierarchy": {
                "lookups": hierarchy.lookups,
                "posmap_block_accesses": hierarchy.posmap_block_accesses,
                "cache_hits": hierarchy.cache_hits,
            },
            "stash_max_occupancy": backend.oram.stash.max_occupancy,
            "phase_cycles": backend.pipeline.breakdown(),
            "pipeline_requests": backend.pipeline.requests,
            "interconnect": backend.interconnect.state_dict(),
        },
        "runtime": runtime_state or {},
    }
    return json.dumps(state)


def restore_backend_state(backend, payload: str) -> dict:
    """Install a :func:`dump_backend_state` document into a live backend.

    The backend must have been built from the same configuration that
    produced the checkpoint (same geometry, same scheme kind); the caller
    -- the shard worker respawn path -- rebuilds it from the shard spec
    first.  Returns the opaque ``runtime`` dict stored at capture time.

    Raises:
        CheckpointError: the document is malformed or inconsistent.
    """
    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"malformed backend checkpoint: {exc}") from exc
    if not isinstance(state, dict) or state.get("kind") != "oram-backend":
        raise CheckpointError("not a backend checkpoint document")
    if state.get("version") != BACKEND_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported backend checkpoint version {state.get('version')!r} "
            f"(this build reads version {BACKEND_FORMAT_VERSION})"
        )
    for key in ("oram", "backend"):
        if key not in state:
            raise CheckpointError(f"backend checkpoint missing key: {key!r}")
    _install_oram_state(backend.oram, _parse_oram_state(state["oram"]))
    saved = state["backend"]
    try:
        backend.busy_until = saved["busy_until"]
        for name in _BACKEND_STAT_FIELDS:
            setattr(backend.stats, name, saved["stats"][name])
        for name in _SCHEME_STAT_FIELDS:
            setattr(backend.scheme.stats, name, saved["scheme_stats"][name])
        hierarchy = backend.posmap_hierarchy
        hierarchy.lookups = saved["posmap_hierarchy"]["lookups"]
        hierarchy.posmap_block_accesses = saved["posmap_hierarchy"][
            "posmap_block_accesses"
        ]
        hierarchy.cache_hits = saved["posmap_hierarchy"]["cache_hits"]
        backend.oram.stash.max_occupancy = saved["stash_max_occupancy"]
        for name, cycles in saved["phase_cycles"].items():
            backend.pipeline.phase_cycles[name] = cycles
        backend.pipeline.requests = saved["pipeline_requests"]
        # Older checkpoints predate the interconnect; its scheduler state
        # then simply resets (flat has none, so only channel-model bus /
        # bank timing and occupancy counters are at stake).
        interconnect_state = saved.get("interconnect")
        if interconnect_state:
            backend.interconnect.load_state_dict(interconnect_state)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed backend checkpoint: {exc!r}") from exc
    runtime = state.get("runtime", {})
    if not isinstance(runtime, dict):
        raise CheckpointError("backend checkpoint runtime section must be a dict")
    return runtime


def save_backend(backend, path: str, runtime_state: Optional[dict] = None) -> None:
    """Write a backend checkpoint crash-safely (temp file + atomic rename)."""
    _atomic_write(path, dump_backend_state(backend, runtime_state))


def restore_backend(backend, path: str) -> dict:
    """Read a backend checkpoint file into a live backend."""
    with open(path) as handle:
        return restore_backend_state(backend, handle.read())
