"""Checkpoint / restore for the functional Path ORAM and the KV store.

A deployable oblivious store must survive restarts: the *untrusted* tree
lives in external storage anyway, and the trusted state (position map,
stash, counters bits) would persist in sealed NVRAM.  This module
serializes both halves of the simulator's state to a portable JSON
document and restores a behaviourally identical ORAM.

Serialized state: geometry, position map (leaves + merge/break/prefetch
bits), every bucket's blocks (address, leaf, optional payload), the stash,
and access counters.  RNG state is intentionally *not* captured -- a
restored ORAM continues with fresh randomness, exactly like a rebooted
device, and stays oblivious.
"""

from __future__ import annotations

import base64
import json
from typing import Optional

from repro.config import ORAMConfig
from repro.oram.block import Block
from repro.oram.path_oram import PathORAM
from repro.utils.rng import DeterministicRng

FORMAT_VERSION = 1


def _encode_block(block: Block) -> dict:
    out = {"a": block.addr, "l": block.leaf}
    if block.data is not None:
        out["d"] = base64.b64encode(block.data).decode("ascii")
    return out


def _decode_block(raw: dict) -> Block:
    data = base64.b64decode(raw["d"]) if "d" in raw else None
    return Block(raw["a"], raw["l"], data)


def dump_oram(oram: PathORAM) -> str:
    """Serialize a Path ORAM to a JSON string."""
    if oram._pending_writeback is not None:
        raise RuntimeError("cannot checkpoint mid-access")
    config = oram.config
    posmap = oram.position_map
    n = posmap.num_blocks
    state = {
        "version": FORMAT_VERSION,
        "config": {
            "levels": config.levels,
            "bucket_size": config.bucket_size,
            "stash_blocks": config.stash_blocks,
            "utilization": config.utilization,
            "block_bytes": config.block_bytes,
            "capacity_bytes": config.capacity_bytes,
            "num_hierarchies": config.num_hierarchies,
            "max_super_block_size": config.max_super_block_size,
            "posmap_entries_per_block": config.posmap_entries_per_block,
            "posmap_cache_entries": config.posmap_cache_entries,
        },
        "leaves": [posmap.leaf(a) for a in range(n)],
        "merge_bits": [posmap.merge_bit(a) for a in range(n)],
        "break_bits": [posmap.break_bit(a) for a in range(n)],
        "prefetch_bits": [posmap.prefetch_bit(a) for a in range(n)],
        "buckets": [
            [_encode_block(b) for b in oram.tree.bucket(i)]
            for i in range(oram.tree.num_buckets)
        ],
        "stash": [_encode_block(b) for b in oram.stash.iter_blocks()],
        "counters": {
            "real_accesses": oram.real_accesses,
            "dummy_accesses": oram.dummy_accesses,
            "stash_soft_overflows": oram.stash_soft_overflows,
        },
    }
    return json.dumps(state)


def load_oram(
    payload: str,
    rng: Optional[DeterministicRng] = None,
    observer=None,
) -> PathORAM:
    """Restore a Path ORAM from :func:`dump_oram` output.

    Args:
        payload: the JSON document.
        rng: fresh randomness for the restored instance (a new seed is
            fine -- and preferable, see the module docstring).
        observer: optional adversary observer to attach.
    """
    state = json.loads(payload)
    if state.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {state.get('version')!r}")
    config = ORAMConfig(**state["config"])
    oram = PathORAM(
        config, rng or DeterministicRng(0xC8C8), observer=observer, populate=False
    )
    oram._populated = True  # state arrives fully formed
    posmap = oram.position_map
    n = posmap.num_blocks
    if len(state["leaves"]) != n:
        raise ValueError(
            f"checkpoint holds {len(state['leaves'])} blocks, config implies {n}"
        )
    for addr in range(n):
        posmap.set_leaf(addr, state["leaves"][addr])
        posmap.set_merge_bit(addr, state["merge_bits"][addr])
        posmap.set_break_bit(addr, state["break_bits"][addr])
        posmap.set_prefetch_bit(addr, state["prefetch_bits"][addr])
    if len(state["buckets"]) != oram.tree.num_buckets:
        raise ValueError("bucket count mismatch")
    for index, raw_bucket in enumerate(state["buckets"]):
        oram.tree._buckets[index] = [_decode_block(raw) for raw in raw_bucket]
    for raw in state["stash"]:
        oram.stash.add(_decode_block(raw))
    counters = state["counters"]
    oram.real_accesses = counters["real_accesses"]
    oram.dummy_accesses = counters["dummy_accesses"]
    oram.stash_soft_overflows = counters["stash_soft_overflows"]
    oram.check_invariants()
    return oram


def save_oram(oram: PathORAM, path: str) -> None:
    """Write a checkpoint file."""
    with open(path, "w") as handle:
        handle.write(dump_oram(oram))


def restore_oram(path: str, rng: Optional[DeterministicRng] = None) -> PathORAM:
    """Read a checkpoint file."""
    with open(path) as handle:
        return load_oram(handle.read(), rng=rng)
