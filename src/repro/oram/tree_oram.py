"""The Shi et al. binary-tree ORAM -- the paper's generalization target.

Section 6.1: "other ORAM schemes (e.g., [27]) have similar binary tree
structure to Path ORAM.  After adding background eviction, these ORAM
schemes can also benefit from using super blocks.  In general, all ORAM
schemes should be able to take advantage of super blocks as long as they
have support for background eviction."

[27] is Shi, Chan, Stefanov, Li (Asiacrypt 2011): blocks live on the path
to their mapped leaf (the same invariant as Path ORAM), but an access
writes the fetched block back to the *root* bucket, and a separate
randomized **eviction** process percolates blocks down -- at every access,
a few random buckets per level each push one block toward the correct
child.

This module implements that ORAM functionally, with optional super block
groups (members share a leaf, are fetched by one path read, and are
re-inserted at the root together), demonstrating the paper's claim on a
second substrate.  A dedicated benchmark measures the bucket-touch
reduction super blocks buy here, mirroring the Path ORAM result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.controller.mixins import (
    BoundedDrainMixin,
    DeepestPlacementMixin,
    SharedLeafMixin,
)
from repro.controller.scheme import ORAMScheme
from repro.oram.block import Block
from repro.oram.tree import BinaryTree
from repro.utils.bitops import is_power_of_two
from repro.utils.rng import DeterministicRng


class ShiTreeORAM(SharedLeafMixin, DeepestPlacementMixin, BoundedDrainMixin):
    """Functional binary-tree ORAM with root insertion and random eviction.

    Implements the :class:`~repro.controller.scheme.ORAMScheme` protocol:
    :meth:`begin_access` scans the path and re-inserts the remapped group
    at the root, :meth:`finish_access` runs the randomized percolation
    eviction, and :meth:`dummy_access` is one extra eviction round
    (draining the overflow area, this scheme's stash).

    Args:
        levels: tree depth ``L`` (2**levels leaves).
        bucket_size: blocks per bucket.  Shi et al. size buckets
            O(log N); the default follows that guidance.
        num_blocks: logical address space size.
        evictions_per_level: buckets randomly evicted per level per access
            (the scheme's ``nu``; 2 in the original paper).
        rng: deterministic randomness.
        observer: optional adversary observer (records the accessed leaf).
    """

    def __init__(
        self,
        levels: int,
        num_blocks: int,
        bucket_size: Optional[int] = None,
        evictions_per_level: int = 2,
        rng: Optional[DeterministicRng] = None,
        observer=None,
    ):
        if levels < 1:
            raise ValueError("need at least one level")
        if num_blocks < 1:
            raise ValueError("need at least one block")
        self.levels = levels
        self.bucket_size = bucket_size if bucket_size is not None else max(4, levels + 1)
        self.tree = BinaryTree(levels, self.bucket_size)
        self.num_blocks = num_blocks
        self.evictions_per_level = evictions_per_level
        self.rng = rng or DeterministicRng(17)
        self.observer = observer
        self._leaves: List[int] = [
            self.rng.random_leaf(self.tree.num_leaves) for _ in range(num_blocks)
        ]
        #: overflow area for blocks that find no room (counted, bounded)
        self.overflow: Dict[int, Block] = {}
        #: soft overflow bound used by ``drain_stash``
        self.overflow_capacity = max(8, 2 * self.bucket_size)
        # Statistics
        self.accesses = 0
        self.bucket_touches = 0
        self.evicted_blocks = 0
        self.dummy_accesses = 0
        self.stash_soft_overflows = 0
        self._pending_access = False
        # Populate: every block starts at the leaf bucket of its leaf (or
        # the closest ancestor with room).
        for addr in range(num_blocks):
            self._place(Block(addr, self._leaves[addr]))

    # ------------------------------------------------------------- plumbing
    def _place(self, block: Block) -> None:
        def bucket_for(level: int, leaf: int) -> List[Block]:
            return self.tree.bucket(self.tree.bucket_index(level, leaf))

        if not self._place_deepest(block, self.levels, self.bucket_size, bucket_for):
            self.overflow[block.addr] = block

    def leaf_of(self, addr: int) -> int:
        return self._leaves[addr]

    # ---------------------------------------------------------------- access
    def begin_access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Dict[int, Block]:
        """Fetch a (super) block: one path read + root re-insertion.

        All of ``addrs`` must share a leaf.  The path is scanned bucket by
        bucket (each scanned bucket is a memory touch), the members are
        removed, remapped to one fresh random leaf, and appended to the
        root; the eviction process runs at :meth:`finish_access`.
        """
        leaf = self._validated_shared_leaf(addrs, self._leaves.__getitem__)
        if self._pending_access:
            raise RuntimeError("previous access not finished")
        self.accesses += 1
        if self.observer is not None:
            self.observer.on_path_access(leaf, "real")
        wanted = set(addrs)
        found: Dict[int, Block] = {}
        for index in self.tree.path_indices(leaf):
            self.bucket_touches += 1
            bucket = self.tree.bucket(index)
            keep = []
            for block in bucket:
                if block.addr in wanted:
                    found[block.addr] = block
                else:
                    keep.append(block)
            self.tree._buckets[index] = keep
        for addr in list(wanted):
            if addr in self.overflow:
                found[addr] = self.overflow.pop(addr)
        missing = wanted - set(found)
        if missing:
            raise KeyError(f"blocks {sorted(missing)} not found on their path")
        # Remap the whole group and re-insert at the root.
        assigned = new_leaf if new_leaf is not None else self.rng.random_leaf(self.tree.num_leaves)
        root = self.tree.bucket(0)
        for addr in addrs:
            block = found[addr]
            block.leaf = assigned
            self._leaves[addr] = assigned
            if len(root) < self.bucket_size:
                root.append(block)
            else:
                self.overflow[addr] = block
        self._pending_access = True
        return found

    def finish_access(self) -> None:
        """Run the randomized eviction committing the access."""
        if not self._pending_access:
            raise RuntimeError("no access in progress")
        self._pending_access = False
        self._evict()

    def access(self, addrs: Sequence[int], new_leaf: Optional[int] = None) -> Dict[int, Block]:
        """One complete access: path read + root insertion + eviction."""
        found = self.begin_access(addrs, new_leaf)
        self.finish_access()
        return found

    def remap_group(self, addrs: Sequence[int], leaf: Optional[int] = None) -> int:
        """Re-point a group whose members are all root/overflow-resident."""
        assigned = leaf if leaf is not None else self.rng.random_leaf(self.tree.num_leaves)
        root = self.tree.bucket(0)
        on_chip = {block.addr: block for block in root}
        for addr in addrs:
            self._leaves[addr] = assigned
            block = self.overflow.get(addr) or on_chip.get(addr)
            if block is not None:
                block.leaf = assigned
        return assigned

    def dummy_access(self, kind: str = "dummy") -> None:
        """One extra eviction round: background overflow relief."""
        self.dummy_accesses += 1
        if self.observer is not None:
            # The eviction touches random buckets, not a single path; what
            # the adversary sees is one more (public) eviction round.
            self.observer.on_path_access(0, kind)
        self._evict()

    # drain_stash comes from BoundedDrainMixin (overflow is this scheme's
    # stash: blocks that found no room on their path).
    def _stash_over_limit(self) -> bool:
        return len(self.overflow) > self.overflow_capacity

    def _note_drain_overflow(self) -> None:
        self.stash_soft_overflows += 1

    @property
    def stash_occupancy(self) -> int:
        """Blocks currently in the overflow area (ORAMScheme protocol)."""
        return len(self.overflow)

    # -------------------------------------------------------------- eviction
    def _evict(self) -> None:
        """Shi et al.'s randomized eviction: per level, pop blocks downward."""
        for level in range(self.levels):
            width = 1 << level
            for _ in range(min(self.evictions_per_level, width)):
                node = self.rng.randint(0, width - 1)
                index = (1 << level) - 1 + node
                bucket = self.tree.bucket(index)
                self.bucket_touches += 3  # parent + both children (oblivious)
                if not bucket:
                    continue
                block = bucket.pop(0)
                # The child on the block's path receives it.
                child_level = level + 1
                child_index = self.tree.bucket_index(child_level, block.leaf)
                child = self.tree.bucket(child_index)
                if len(child) < self.bucket_size:
                    child.append(block)
                    self.evicted_blocks += 1
                else:
                    bucket.append(block)  # no room: stays put this round
        # Drain overflow opportunistically through the root.
        root = self.tree.bucket(0)
        while self.overflow and len(root) < self.bucket_size:
            _, block = self.overflow.popitem()
            root.append(block)

    # ------------------------------------------------------------ invariants
    def check_invariants(self) -> None:
        """Every block sits on the path of its mapped leaf (or overflow)."""
        seen = set()
        for index in range(self.tree.num_buckets):
            level = (index + 1).bit_length() - 1
            for block in self.tree.bucket(index):
                assert block.addr not in seen, f"duplicate block {block.addr}"
                seen.add(block.addr)
                expected = self.tree.bucket_index(level, self._leaves[block.addr])
                assert expected == index, (
                    f"block {block.addr} off its path at bucket {index}"
                )
        for addr in self.overflow:
            assert addr not in seen
            seen.add(addr)
        assert len(seen) == self.num_blocks, "blocks lost"


ORAMScheme.register(ShiTreeORAM)


def merge_pairs(oram: ShiTreeORAM, sbsize: int = 2) -> None:
    """Statically merge aligned groups (the super block invariant).

    Physically relocates members onto their common leaf's path, exactly as
    the static scheme's initialization does for Path ORAM.
    """
    if not is_power_of_two(sbsize):
        raise ValueError("super block size must be a power of two")
    for base in range(0, oram.num_blocks, sbsize):
        members = list(range(base, min(base + sbsize, oram.num_blocks)))
        if len(members) < 2:
            continue
        # Fetch each member individually (they may sit on different paths),
        # then re-fetch the group under one leaf.
        target = oram.rng.random_leaf(oram.tree.num_leaves)
        for addr in members:
            oram.access([addr], new_leaf=target)
