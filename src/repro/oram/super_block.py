"""Super block schemes (paper section 3).

A *super block* is a group of ``2**k`` blocks, adjacent and aligned in the
program address space, that are all mapped to the same path so a single
ORAM access fetches them together (Figure 3).  This module defines:

* :class:`SuperBlockScheme` -- the strategy interface the ORAM memory
  backend drives (which members to collect, what to do after a fetch);
* :class:`BaselineScheme` -- no super blocks (the paper's ``oram`` bar);
* :class:`StaticSuperBlockScheme` -- the prior-work static scheme
  (section 3.3): merge every aligned group of ``n`` at initialization,
  never adapt;
* :class:`PrefetchTracker` -- shared prefetch-bit / hit-bit bookkeeping and
  prefetch hit/miss statistics used by both the static and dynamic schemes.

The dynamic scheme (PrORAM itself) lives in :mod:`repro.core.dynamic`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.oram.block import Block
from repro.oram.path_oram import PathORAM
from repro.utils.bitops import group_base


@dataclass
class SchemeStats:
    """Counters exposed by every scheme (feed Figures 8 and 9)."""

    merges: int = 0
    breaks: int = 0
    prefetched_blocks: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0

    @property
    def prefetch_miss_rate(self) -> float:
        """Misses over resolved prefetches (the Figure 9 metric)."""
        resolved = self.prefetch_hits + self.prefetch_misses
        if resolved == 0:
            return 0.0
        return self.prefetch_misses / resolved

    @property
    def prefetch_hit_rate(self) -> float:
        resolved = self.prefetch_hits + self.prefetch_misses
        if resolved == 0:
            return 0.0
        return self.prefetch_hits / resolved


@dataclass(slots=True)
class FetchOutcome:
    """What the scheme decided after one ORAM fetch.

    Attributes:
        to_llc: (addr, prefetched) pairs whose copies enter the LLC; the
            demand block is always present with ``prefetched=False``.
            Members the scheme leaves out (the written-back half of a broken
            super block) simply stay in the ORAM.
    """

    to_llc: List[Tuple[int, bool]] = field(default_factory=list)


class PrefetchTracker:
    """Prefetch-bit (position map) and hit-bit (block-side) bookkeeping.

    Implements the accounting of section 4.3: a block inserted into the LLC
    as a prefetch gets ``prefetch=1, hit=0``; its first use sets ``hit``;
    leaving the LLC unused is deemed a prefetch miss.  The bits themselves
    persist across eviction (they are read again by the break algorithm the
    next time the super block is loaded); the *statistics* count each
    prefetched LLC residency exactly once, as a hit on first use or a miss
    on unused eviction.
    """

    def __init__(self, oram: PathORAM, stats: SchemeStats, listener=None):
        self._posmap = oram.position_map
        # Direct handle on the position map's prefetch-bit array: the
        # tracker is hit on every LLC hit/evict and every fetched member,
        # and the accessor-call overhead was visible in profiles.  The
        # position map never reallocates the bytearray.
        self._prefetch_bits = self._posmap._prefetch_bits
        self._hit_bits = bytearray(self._posmap.num_blocks)
        self.stats = stats
        #: optional adaptive-threshold policy notified of hit/miss events
        self.listener = listener

    def hit_bit(self, addr: int) -> int:
        return self._hit_bits[addr]

    def mark_prefetched(self, addr: int) -> None:
        """Block enters the LLC as a prefetch (Algorithm 2 else-branch)."""
        self._prefetch_bits[addr] = 1
        self._hit_bits[addr] = 0
        self.stats.prefetched_blocks += 1

    def on_use(self, addr: int) -> None:
        """LLC hit on the block: first use of a pending prefetch is a hit."""
        if self._prefetch_bits[addr] and not self._hit_bits[addr]:
            self._hit_bits[addr] = 1
            self.stats.prefetch_hits += 1
            if self.listener is not None:
                self.listener.on_prefetch_hit()

    def on_llc_evict(self, addr: int) -> None:
        """Block leaves the LLC; an unused pending prefetch is a miss."""
        if self._prefetch_bits[addr] and not self._hit_bits[addr]:
            self.stats.prefetch_misses += 1
            if self.listener is not None:
                self.listener.on_prefetch_miss()

    def consume_bits(self, addr: int) -> Tuple[int, int]:
        """Read-and-clear for Algorithm 2 (block arriving from the ORAM).

        Returns the (prefetch, hit) pair the break counter update uses and
        clears the prefetch bit ("b.prefetch = false").
        """
        prefetch_bits = self._prefetch_bits
        prefetch = prefetch_bits[addr]
        hit = self._hit_bits[addr]
        prefetch_bits[addr] = 0
        return prefetch, hit


class SuperBlockScheme(ABC):
    """Strategy driven by the ORAM memory backend.

    Lifecycle: construct, :meth:`attach` to a (not yet populated) ORAM plus
    an LLC tag-probe callback, :meth:`initialize` (may rewrite the position
    map), then the backend populates the ORAM and starts calling
    :meth:`members_for` / :meth:`process_fetch` per miss and
    :meth:`on_llc_hit` / :meth:`on_llc_evict` per cache event.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = SchemeStats()
        self._oram: Optional[PathORAM] = None
        self._llc_contains: Callable[[int], bool] = lambda addr: False
        self._tracker: Optional[PrefetchTracker] = None
        self._merge_throttled = False

    def attach(self, oram: PathORAM, llc_contains: Callable[[int], bool]) -> None:
        self._oram = oram
        self._llc_contains = llc_contains
        self._tracker = PrefetchTracker(oram, self.stats, listener=self.threshold_listener())
        # Flatten the per-LLC-hit delegation: no scheme overrides
        # on_llc_hit, so the instance attribute routes hits straight to the
        # tracker (the backend re-exports this bound method in turn).
        self.on_llc_hit = self._tracker.on_use

    def set_llc_probe(self, llc_contains: Callable[[int], bool]) -> None:
        """Swap in the final LLC tag-probe callable.

        Attach happens before the cache hierarchy exists, so the backend
        first hands the scheme an indirection; once the system wires the
        real probe it is installed here directly -- the merge algorithm
        probes the LLC on every access, and each skipped delegation frame
        is measurable.
        """
        self._llc_contains = llc_contains

    def threshold_listener(self):
        """Adaptive-threshold policy to notify of prefetch events (or None)."""
        return None

    def set_merge_throttled(self, throttled: bool) -> None:
        """Graceful degradation under stash pressure.

        Merging grows super blocks, and bigger super blocks push more
        blocks through the stash per access; when the resilient backend
        sees occupancy cross its soft watermark it suspends merges until
        pressure subsides.  Breaks stay enabled -- they *relieve* pressure.
        """
        self._merge_throttled = throttled

    def initialize(self) -> None:
        """Adjust the position map before the ORAM is populated (default: no-op)."""

    @abstractmethod
    def members_for(self, addr: int) -> List[int]:
        """Basic-block addresses fetched together when ``addr`` misses."""

    @abstractmethod
    def process_fetch(
        self, demand: int, members: List[int], fetched: Dict[int, Block]
    ) -> FetchOutcome:
        """Post-fetch decisions (prefetch marking, merge/break).

        Args:
            demand: the missed address that triggered the access.
            members: every basic block of the accessed super block.
            fetched: the members "coming from ORAM" -- those whose copies
                were not already resident in the LLC (Algorithm 2 only
                evaluates these).
        """

    def on_llc_hit(self, addr: int) -> None:
        """Processor used the block in the LLC ("when block b is accessed: b.hit = true")."""
        if self._tracker is not None:
            self._tracker.on_use(addr)

    def on_llc_evict(self, addr: int) -> None:
        if self._tracker is not None:
            self._tracker.on_llc_evict(addr)

    # --------------------------------------------------------------- helpers
    @property
    def oram(self) -> PathORAM:
        assert self._oram is not None, "scheme not attached"
        return self._oram

    @property
    def tracker(self) -> PrefetchTracker:
        assert self._tracker is not None, "scheme not attached"
        return self._tracker

    def _clip_group(self, base: int, size: int) -> List[int]:
        """Members of the aligned group, clipped to the address space."""
        top = min(base + size, self.oram.position_map.num_blocks)
        return list(range(base, top))


class BaselineScheme(SuperBlockScheme):
    """Plain Path ORAM: every access fetches exactly the demand block."""

    name = "oram"

    def members_for(self, addr: int) -> List[int]:
        return [addr]

    def process_fetch(
        self, demand: int, members: List[int], fetched: Dict[int, Block]
    ) -> FetchOutcome:
        return FetchOutcome(to_llc=[(demand, False)])


class StaticSuperBlockScheme(SuperBlockScheme):
    """The prior-work static scheme (section 3.3).

    Every aligned group of ``sbsize`` blocks is merged at initialization
    (before the tree is populated); groups are accessed and remapped as a
    unit forever.  No runtime adaptation: with poor spatial locality the
    prefetches miss, pollute the cache, and inflate background evictions --
    the limitation PrORAM fixes.
    """

    name = "stat"

    def __init__(self, sbsize: int):
        super().__init__()
        if sbsize < 1 or (sbsize & (sbsize - 1)) != 0:
            raise ValueError("static super block size must be a power of two >= 1")
        self.sbsize = sbsize

    def initialize(self) -> None:
        posmap = self.oram.position_map
        for base in range(0, posmap.num_blocks, self.sbsize):
            members = self._clip_group(base, self.sbsize)
            posmap.remap(members)

    def members_for(self, addr: int) -> List[int]:
        return self._clip_group(group_base(addr, self.sbsize), self.sbsize)

    def process_fetch(
        self, demand: int, members: List[int], fetched: Dict[int, Block]
    ) -> FetchOutcome:
        outcome = FetchOutcome()
        for addr in fetched:
            if addr == demand:
                outcome.to_llc.append((addr, False))
            else:
                self.tracker.consume_bits(addr)  # refresh any stale pending bit
                self.tracker.mark_prefetched(addr)
                outcome.to_llc.append((addr, True))
        return outcome
