"""The Goldreich-Ostrovsky square-root ORAM -- the paper's reference [11].

PrORAM's introduction anchors on Goldreich & Ostrovsky's original ORAM
construction; this module implements the classic square-root scheme as a
historical baseline so the repository spans the lineage from 1996 to Path
ORAM:

* the server holds ``n`` shuffled blocks plus ``sqrt(n)`` *shelter* slots;
* blocks are permuted by a secret pseudorandom permutation;
* each access scans the whole shelter (hiding whether the target was
  there) and then probes either the target's permuted slot or the next
  unread *dummy* slot -- so every probe address is fresh and random-looking;
* after ``sqrt(n)`` accesses everything is obliviously reshuffled under a
  new permutation.

Asymptotically it is far worse than Path ORAM (the reshuffle costs
O(n log n) and the shelter scan O(sqrt n) per access), which is exactly the
progress the paper's background section narrates.  The access-counting
benchmark and tests quantify that gap against the tree ORAMs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.controller.scheme import ORAMScheme
from repro.utils.rng import DeterministicRng


class SquareRootORAM:
    """Functional square-root ORAM over an integer address space.

    Implements the :class:`~repro.controller.scheme.ORAMScheme` protocol:
    :meth:`begin_access` serves each requested address with one full
    oblivious access (the scheme has no deferred write-back, so
    :meth:`finish_access` just closes the bracket), :meth:`dummy_access`
    burns one never-read dummy slot, and the shelter plays the stash's
    role -- its occupancy is bounded by the public reshuffle period, so
    :meth:`drain_stash` never needs to evict.

    Args:
        num_blocks: logical blocks (``n``); the server array holds
            ``n + ceil(sqrt(n))`` slots (real + dummy) plus the shelter.
        rng: secret randomness for permutations.
        observer: optional adversary observer; each *server probe* is
            reported as a "path access" on the slot index (for uniformity
            testing the slot plays the leaf's role).
    """

    def __init__(
        self,
        num_blocks: int,
        rng: Optional[DeterministicRng] = None,
        observer=None,
    ):
        if num_blocks < 1:
            raise ValueError("need at least one block")
        self.num_blocks = num_blocks
        self.rng = rng or DeterministicRng(23)
        self.observer = observer
        self.shelter_size = max(1, int(num_blocks ** 0.5 + 0.5))
        self.num_dummies = self.shelter_size
        self._values: List[Any] = [None] * num_blocks
        # Statistics
        self.accesses = 0
        self.server_probes = 0
        self.reshuffles = 0
        self.dummy_accesses = 0
        self._pending_access = False
        self._reshuffle()

    # ------------------------------------------------------------- internals
    @property
    def server_slots(self) -> int:
        return self.num_blocks + self.num_dummies

    def _reshuffle(self) -> None:
        """Install a fresh secret permutation and empty the shelter.

        A real implementation performs an oblivious sort costing
        O(n log n) server touches; we charge exactly that.
        """
        self.reshuffles += 1
        self._permutation = self.rng.permutation(self.server_slots)
        self._slot_of: Dict[int, int] = {
            addr: self._permutation[addr] for addr in range(self.num_blocks)
        }
        self._dummy_cursor = self.num_blocks  # next unread dummy (pre-permutation id)
        self._shelter: Dict[int, Any] = {}
        self._epoch_accesses = 0
        import math

        n = self.server_slots
        self.server_probes += int(n * max(1, math.log2(n)))

    def _probe(self, slot: int) -> None:
        self.server_probes += 1
        if self.observer is not None:
            self.observer.on_path_access(slot, "probe")

    # ----------------------------------------------------------------- access
    def access(self, addr: int, new_value: Any = None) -> Any:
        """One oblivious access: shelter scan + one fresh server probe."""
        if not 0 <= addr < self.num_blocks:
            raise KeyError(f"address {addr} out of range")
        self.accesses += 1
        # 1. Scan the whole shelter (constant traffic regardless of hit).
        self.server_probes += self.shelter_size
        in_shelter = addr in self._shelter
        # 2. Probe the real slot if not sheltered, else burn a dummy slot --
        #    either way the adversary sees one never-before-read slot.
        if in_shelter:
            slot = self._permutation[self._dummy_cursor]
            self._dummy_cursor += 1
            value = self._shelter[addr]
        else:
            slot = self._slot_of[addr]
            value = self._values[addr]
        self._probe(slot)
        # 3. The (possibly updated) block joins the shelter.
        if new_value is not None:
            value = new_value
        self._shelter[addr] = value
        self._values[addr] = value
        # 4. Reshuffle after exactly sqrt(n) accesses -- a *public* period
        #    (a data-dependent trigger would itself leak shelter hit rates).
        self._epoch_accesses += 1
        if self._epoch_accesses >= self.shelter_size:
            self._reshuffle()
        return value

    # ------------------------------------------------- ORAMScheme protocol
    def begin_access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Dict[int, Any]:
        """Serve each address with one full oblivious access.

        The square-root construction has no leaf positions (``new_leaf``
        is ignored) and no super blocks, so a multi-member group simply
        costs one access per member.
        """
        if not addrs:
            raise ValueError("access needs at least one address")
        if self._pending_access:
            raise RuntimeError("previous access not finished")
        fetched = {addr: self.access(addr) for addr in addrs}
        self._pending_access = True
        return fetched

    def finish_access(self) -> None:
        """No deferred write-back: the shelter already holds the blocks."""
        if not self._pending_access:
            raise RuntimeError("no access in progress")
        self._pending_access = False

    def dummy_access(self, kind: str = "dummy") -> None:
        """Burn one never-read dummy slot (a full-shape fake access)."""
        self.dummy_accesses += 1
        self.server_probes += self.shelter_size  # the shelter scan
        slot = self._permutation[self._dummy_cursor]
        self._dummy_cursor += 1
        self.server_probes += 1
        if self.observer is not None:
            self.observer.on_path_access(slot, kind)
        self._epoch_accesses += 1
        if self._epoch_accesses >= self.shelter_size:
            self._reshuffle()

    def drain_stash(self) -> int:
        """The shelter is emptied by the public-period reshuffle, never by
        background evictions; occupancy is bounded by construction."""
        return 0

    @property
    def stash_occupancy(self) -> int:
        """Sheltered blocks (the scheme's on-chip state)."""
        return len(self._shelter)

    # ------------------------------------------------------------ invariants
    def check_invariants(self) -> None:
        """Audit permutation, cursor, shelter, and value-array consistency.

        Raises:
            AssertionError: if any invariant is violated.
        """
        n = self.server_slots
        assert sorted(self._permutation) == list(range(n)), (
            "permutation is not a bijection over the server slots"
        )
        for addr, slot in self._slot_of.items():
            assert 0 <= addr < self.num_blocks, f"phantom address {addr}"
            assert slot == self._permutation[addr], (
                f"address {addr}: cached slot {slot} != permutation"
            )
        assert len(self._slot_of) == self.num_blocks, "addresses lost"
        assert self.num_blocks <= self._dummy_cursor <= n, (
            f"dummy cursor {self._dummy_cursor} outside its dummy range"
        )
        assert self._epoch_accesses < self.shelter_size, (
            "epoch outlived the reshuffle period"
        )
        assert len(self._shelter) <= self.shelter_size, "shelter over capacity"
        for addr, value in self._shelter.items():
            assert 0 <= addr < self.num_blocks, f"sheltered phantom {addr}"
            assert self._values[addr] == value, (
                f"sheltered copy of {addr} desynced from the value array"
            )

    # -------------------------------------------------------------- analysis
    def probes_per_access(self) -> float:
        """Amortized server touches per access so far."""
        return self.server_probes / self.accesses if self.accesses else 0.0


ORAMScheme.register(SquareRootORAM)
