"""Ring ORAM -- the bandwidth-optimized tree ORAM (Ren et al., 2015).

Ring ORAM is the natural stress test for the paper's section 6.1 claim
("all ORAM schemes should be able to take advantage of super blocks"):
unlike Path ORAM it does *not* read whole paths on every access, so super
blocks interact with its machinery non-trivially.

The construction, functionally:

* each bucket holds up to ``Z`` real blocks and ``S`` dummy slots, with a
  per-bucket access budget;
* **ReadPath** touches exactly one slot per bucket on the accessed path --
  the addressed block where it lives, a fresh dummy everywhere else -- so
  an access moves ``L+1`` blocks instead of Path ORAM's ``(L+1) * Z * 2``;
* every ``A`` accesses an **EvictPath** reads and rewrites one full path,
  chosen in reverse-lexicographic order (deterministic, public);
* a bucket whose budget is exhausted before its next eviction gets an
  **EarlyReshuffle** (read + rewrite of that bucket).

The Path ORAM invariant is unchanged -- every block lives on the path of
its mapped leaf or in the stash -- which is exactly why super blocks carry
over: members share a leaf, and one ReadPath can collect them all (paying
an extra touch only when two members share a bucket).

Bandwidth is the whole point of Ring ORAM, so the class meters
``blocks_transferred`` for every operation; the generalization benchmark
compares amortized blocks/access against Path ORAM, with and without
pairing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.controller.mixins import (
    BoundedDrainMixin,
    DeepestPlacementMixin,
    GreedyWritebackMixin,
    SharedLeafMixin,
)
from repro.controller.scheme import ORAMScheme
from repro.oram.block import Block
from repro.utils.rng import DeterministicRng


def reverse_bits(value: int, width: int) -> int:
    """Bit-reversal (the reverse-lexicographic eviction order)."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class _RingBucket:
    """A bucket with Z real slots, S dummy slots, and an access budget."""

    __slots__ = ("blocks", "accesses")

    def __init__(self):
        self.blocks: List[Block] = []
        self.accesses = 0


class RingORAM(
    SharedLeafMixin, DeepestPlacementMixin, GreedyWritebackMixin, BoundedDrainMixin
):
    """Functional Ring ORAM with super block support.

    Implements the :class:`~repro.controller.scheme.ORAMScheme` protocol:
    the access splits into :meth:`begin_access` (ReadPath + remap, members
    parked in the stash) and :meth:`finish_access` (the periodic EvictPath
    / EarlyReshuffle maintenance), and background pressure is relieved by
    :meth:`dummy_access` (one forced EvictPath) under the shared bounded
    drain.

    Args:
        levels: tree depth ``L``.
        num_blocks: logical address space.
        z: real slots per bucket (Ring ORAM favours larger Z than Path
            ORAM; 8 is a reasonable small-scale setting).
        s: dummy slots per bucket (the per-bucket access budget).
        a: accesses between EvictPath operations.
        stash_capacity: soft stash bound used by ``drain_stash``.
        rng: deterministic randomness.
        observer: optional adversary observer (accessed leaves).
    """

    def __init__(
        self,
        levels: int,
        num_blocks: int,
        z: int = 8,
        s: int = 12,
        a: int = 8,
        stash_capacity: Optional[int] = None,
        rng: Optional[DeterministicRng] = None,
        observer=None,
    ):
        if levels < 1 or num_blocks < 1:
            raise ValueError("need at least one level and one block")
        if s < a:
            raise ValueError("dummy budget S must cover the eviction period A")
        self.levels = levels
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        self.z = z
        self.s = s
        self.a = a
        self.rng = rng or DeterministicRng(31)
        self.observer = observer
        self.num_blocks = num_blocks
        self._buckets = [_RingBucket() for _ in range(self.num_buckets)]
        self._leaves = [self.rng.random_leaf(self.num_leaves) for _ in range(num_blocks)]
        self.stash: Dict[int, Block] = {}
        self.stash_capacity = (
            stash_capacity if stash_capacity is not None else max(32, 4 * levels)
        )
        # Statistics
        self.accesses = 0
        self.evict_paths = 0
        self.early_reshuffles = 0
        self.blocks_transferred = 0
        self.dummy_accesses = 0
        self.stash_soft_overflows = 0
        self._evict_counter = 0
        self._pending_path: Optional[List[int]] = None
        self._populate()

    # ------------------------------------------------------------- plumbing
    def _bucket_index(self, level: int, leaf: int) -> int:
        return (1 << level) - 1 + (leaf >> (self.levels - level))

    def _path_indices(self, leaf: int) -> List[int]:
        return [self._bucket_index(level, leaf) for level in range(self.levels + 1)]

    def _populate(self) -> None:
        def bucket_for(level: int, leaf: int) -> List[Block]:
            return self._buckets[self._bucket_index(level, leaf)].blocks

        for addr in range(self.num_blocks):
            block = Block(addr, self._leaves[addr])
            if not self._place_deepest(block, self.levels, self.z, bucket_for):
                self.stash[addr] = block

    def leaf_of(self, addr: int) -> int:
        return self._leaves[addr]

    # ----------------------------------------------------------------- access
    def begin_access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Dict[int, Block]:
        """ReadPath for a (super) block: fetch, remap, park in the stash.

        All of ``addrs`` must share a leaf.  One slot is touched per bucket
        on the path (an extra touch per additional member co-located in the
        same bucket); members are remapped together to a fresh leaf and
        stay in the stash until an EvictPath writes them back.  The
        periodic maintenance runs at :meth:`finish_access`.
        """
        leaf = self._validated_shared_leaf(addrs, self._leaves.__getitem__)
        if self._pending_path is not None:
            raise RuntimeError("previous access not finished")
        self.accesses += 1
        if self.observer is not None:
            self.observer.on_path_access(leaf, "real")
        wanted = set(addrs)
        found: Dict[int, Block] = {}
        for index in self._path_indices(leaf):
            bucket = self._buckets[index]
            hits = [b for b in bucket.blocks if b.addr in wanted]
            # One touch minimum (dummy if no member here); one per member
            # beyond the first costs an extra touch of this bucket.
            touches = max(1, len(hits))
            bucket.accesses += touches
            self.blocks_transferred += touches
            for block in hits:
                bucket.blocks.remove(block)
                found[block.addr] = block
        for addr in wanted - set(found):
            if addr in self.stash:
                found[addr] = self.stash.pop(addr)
        missing = wanted - set(found)
        if missing:
            raise KeyError(f"blocks {sorted(missing)} not on their path")
        assigned = new_leaf if new_leaf is not None else self.rng.random_leaf(self.num_leaves)
        for addr in addrs:
            block = found[addr]
            block.leaf = assigned
            self._leaves[addr] = assigned
            self.stash[addr] = block
        self._pending_path = self._path_indices(leaf)
        return found

    def finish_access(self) -> None:
        """Periodic maintenance: counted EvictPath + EarlyReshuffle."""
        if self._pending_path is None:
            raise RuntimeError("no access in progress")
        pending = self._pending_path
        self._pending_path = None
        self._evict_counter += 1
        if self._evict_counter >= self.a:
            self._evict_counter = 0
            self._evict_path()
        self._early_reshuffle(pending)

    def access(self, addrs: Sequence[int], new_leaf: Optional[int] = None) -> Dict[int, Block]:
        """One complete access: ReadPath plus the periodic maintenance."""
        found = self.begin_access(addrs, new_leaf)
        self.finish_access()
        return found

    def remap_group(self, addrs: Sequence[int], leaf: Optional[int] = None) -> int:
        """Re-point a group whose members are all stash-resident (merge/break)."""
        assigned = leaf if leaf is not None else self.rng.random_leaf(self.num_leaves)
        for addr in addrs:
            self._leaves[addr] = assigned
            block = self.stash.get(addr)
            if block is not None:
                block.leaf = assigned
        return assigned

    # --------------------------------------------------------------- eviction
    def _evict_path(self) -> None:
        """Full read+write of the next reverse-lexicographic path."""
        leaf = reverse_bits(self.evict_paths % self.num_leaves, self.levels)
        self.evict_paths += 1
        indices = self._path_indices(leaf)
        # Read every real block on the path into the stash.
        for index in indices:
            bucket = self._buckets[index]
            self.blocks_transferred += self.z + self.s  # full bucket read
            for block in bucket.blocks:
                self.stash[block.addr] = block
            bucket.blocks = []
            bucket.accesses = 0

        # Greedy write-back, deepest first (the shared mixin algorithm).
        def write_bucket(level: int, blocks: List[Block]) -> None:
            self._buckets[self._bucket_index(level, leaf)].blocks = blocks
            self.blocks_transferred += self.z + self.s  # full bucket write

        self._greedy_writeback(leaf, self.levels, self.z, self.stash, write_bucket)

    def dummy_access(self, kind: str = "dummy") -> None:
        """One forced EvictPath: background stash relief (no block remapped).

        The eviction leaf is the public reverse-lexicographic schedule, so
        the adversary learns nothing beyond the (public) eviction count.
        """
        self.dummy_accesses += 1
        if self.observer is not None:
            leaf = reverse_bits(self.evict_paths % self.num_leaves, self.levels)
            self.observer.on_path_access(leaf, kind)
        self._evict_path()

    # drain_stash comes from BoundedDrainMixin.
    def _stash_over_limit(self) -> bool:
        return len(self.stash) > self.stash_capacity

    def _note_drain_overflow(self) -> None:
        self.stash_soft_overflows += 1

    def _early_reshuffle(self, indices: Sequence[int]) -> None:
        """Rewrite buckets whose dummy budget is exhausted."""
        for index in indices:
            bucket = self._buckets[index]
            if bucket.accesses >= self.s:
                self.early_reshuffles += 1
                self.blocks_transferred += 2 * (self.z + self.s)
                bucket.accesses = 0

    # ------------------------------------------------------------ invariants
    def check_invariants(self) -> None:
        seen = set()
        for index in range(self.num_buckets):
            level = (index + 1).bit_length() - 1
            bucket = self._buckets[index]
            assert len(bucket.blocks) <= self.z, f"bucket {index} over Z"
            for block in bucket.blocks:
                assert block.addr not in seen, f"duplicate {block.addr}"
                seen.add(block.addr)
                expected = self._bucket_index(level, self._leaves[block.addr])
                assert expected == index, f"block {block.addr} off-path"
        for addr in self.stash:
            assert addr not in seen
            seen.add(addr)
        assert len(seen) == self.num_blocks, "blocks lost"

    # -------------------------------------------------------------- analysis
    @property
    def stash_occupancy(self) -> int:
        """Blocks currently held on-chip (ORAMScheme protocol)."""
        return len(self.stash)

    def blocks_per_access(self) -> float:
        """Amortized blocks moved per logical access (Ring's headline metric)."""
        return self.blocks_transferred / self.accesses if self.accesses else 0.0


ORAMScheme.register(RingORAM)


def merge_pairs(oram: RingORAM, sbsize: int = 2) -> None:
    """Statically pair aligned groups (the super block invariant) on Ring ORAM."""
    for base in range(0, oram.num_blocks - 1, sbsize):
        members = list(range(base, min(base + sbsize, oram.num_blocks)))
        if len(members) < 2:
            continue
        target = oram.rng.random_leaf(oram.num_leaves)
        for addr in members:
            oram.access([addr], new_leaf=target)
