"""Data blocks stored in the ORAM.

A block is the unit the ORAM moves around -- one cacheline (128 B by
default).  The *hit bit* of the dynamic super block scheme travels with the
block (paper section 4.5.1: it is stored with the data block in the ORAM and
the LLC because the corresponding PosMap block may not be on-chip when an
LLC hit happens); the merge/break/prefetch bits live in the position map.
"""

from __future__ import annotations

from typing import Optional


class Block:
    """One ORAM data block.

    Attributes:
        addr: program (logical) block address.
        leaf: leaf label the block is currently mapped to.  Kept in sync
            with the position map entry for ``addr`` whenever the block is
            inside the ORAM domain (tree or stash).
        data: optional payload.  The timing simulator leaves this ``None``;
            the functional key-value store carries real bytes.

    The hit bit conceptually travels with the block (hardware cannot reach
    the PosMap block on an LLC hit); the simulator keeps it in the
    :class:`~repro.oram.super_block.PrefetchTracker`'s flat array, which is
    behaviourally identical and cheaper than a per-object attribute.
    """

    __slots__ = ("addr", "leaf", "data")

    def __init__(self, addr: int, leaf: int, data: Optional[bytes] = None):
        self.addr = addr
        self.leaf = leaf
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block(addr={self.addr}, leaf={self.leaf})"
