"""The on-chip stash (paper section 2.2).

The stash temporarily holds blocks that could not be evicted back onto a
tree path.  Its capacity (Table 1: 100 blocks) excludes the transient path
buffer: during an access the blocks just read from the path pass through
without counting against capacity, and the overflow check happens between
accesses (the controller issues background evictions before serving the
next real request when the stash is over capacity, section 2.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.oram.block import Block


class Stash:
    """Address-indexed block store with occupancy statistics."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("stash capacity must be >= 1")
        self.capacity = capacity
        self._blocks: Dict[int, Block] = {}
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, addr: int) -> bool:
        return addr in self._blocks

    def add(self, block: Block) -> None:
        """Insert a block; addresses must be unique."""
        if block.addr in self._blocks:
            raise ValueError(f"duplicate block {block.addr} in stash")
        self._blocks[block.addr] = block
        if len(self._blocks) > self.max_occupancy:
            self.max_occupancy = len(self._blocks)

    def add_all(self, blocks: List[Block]) -> None:
        """Insert many blocks (path read)."""
        for block in blocks:
            self.add(block)

    def pop(self, addr: int) -> Optional[Block]:
        """Remove and return the block with ``addr`` if present."""
        return self._blocks.pop(addr, None)

    def peek(self, addr: int) -> Optional[Block]:
        """Return the block with ``addr`` without removing it."""
        return self._blocks.get(addr)

    def over_capacity(self) -> bool:
        """True when background eviction is required before the next access."""
        return len(self._blocks) > self.capacity

    def iter_blocks(self) -> Iterator[Block]:
        yield from self._blocks.values()

    def items(self):
        return self._blocks.items()
