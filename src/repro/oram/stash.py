"""The on-chip stash (paper section 2.2).

The stash temporarily holds blocks that could not be evicted back onto a
tree path.  Its capacity (Table 1: 100 blocks) excludes the transient path
buffer: during an access the blocks just read from the path pass through
without counting against capacity, and the overflow check happens between
accesses (the controller issues background evictions before serving the
next real request when the stash is over capacity, section 2.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.oram.block import Block


class Stash:
    """Address-indexed block store with occupancy statistics."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("stash capacity must be >= 1")
        self.capacity = capacity
        self._blocks: Dict[int, Block] = {}
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, addr: int) -> bool:
        return addr in self._blocks

    def add(self, block: Block) -> None:
        """Insert a block; addresses must be unique."""
        if block.addr in self._blocks:
            raise ValueError(f"duplicate block {block.addr} in stash")
        self._blocks[block.addr] = block
        if len(self._blocks) > self.max_occupancy:
            self.max_occupancy = len(self._blocks)

    def add_all(self, blocks: List[Block]) -> None:
        """Insert many blocks (path read).

        Hot path: one bulk insert with an amortized duplicate check and a
        single high-watermark update instead of per-block bookkeeping.
        """
        store = self._blocks
        before = len(store)
        for block in blocks:
            store[block.addr] = block
        after = len(store)
        if after != before + len(blocks):
            # Slow path purely for the error message: find the duplicate.
            raise ValueError("duplicate block in stash (path/stash overlap)")
        if after > self.max_occupancy:
            self.max_occupancy = after

    def absorb_path(self, tree, leaf: int) -> None:
        """Move a whole tree path into the stash (step 2 of every access).

        Hands the backing dict to :meth:`BinaryTree.read_path_into` so path
        blocks land directly in the stash with no intermediate list, with
        the same amortized duplicate check and single watermark update as
        :meth:`add_all`.
        """
        store = self._blocks
        before = len(store)
        moved = tree.read_path_into(leaf, store)
        after = len(store)
        if after != before + moved:
            raise ValueError("duplicate block in stash (path/stash overlap)")
        if after > self.max_occupancy:
            self.max_occupancy = after

    def pop(self, addr: int) -> Optional[Block]:
        """Remove and return the block with ``addr`` if present."""
        return self._blocks.pop(addr, None)

    def remove_all(self, blocks: List[Block]) -> None:
        """Remove blocks just written back onto a path (hot eviction path).

        Every block must be present; eviction only places blocks it took
        from this stash.
        """
        store = self._blocks
        for block in blocks:
            del store[block.addr]

    def peek(self, addr: int) -> Optional[Block]:
        """Return the block with ``addr`` without removing it."""
        return self._blocks.get(addr)

    def over_capacity(self) -> bool:
        """True when background eviction is required before the next access."""
        return len(self._blocks) > self.capacity

    def iter_blocks(self) -> Iterator[Block]:
        """Iterate blocks in insertion order (no generator frame: the
        write-back path walks this once per access)."""
        return iter(self._blocks.values())

    def items(self):
        return self._blocks.items()
