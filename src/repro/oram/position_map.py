"""Position map with the PrORAM bit fields (paper sections 2.2, 4.1, Figure 4).

The position map associates each program block address with the leaf label
it is currently mapped to.  PrORAM extends every position map entry with a
*merge bit*, a *break bit* and a *prefetch bit*; concatenating the bits of
the basic blocks in an aligned group reconstructs the group's merge or
break counter (see :mod:`repro.core.counters`).

The map is stored as flat arrays for speed, but it also exposes the paper's
*PosMap block* view: entries for ``posmap_entries_per_block`` consecutive
addresses share one PosMap block (128 B holding 32 x (25-bit leaf + merge
bit + break bit) in the paper's configuration).  Because a super block is
always an aligned power-of-two group no larger than a PosMap block, all of
a super block's entries -- and its neighbor's -- live in the same PosMap
block, so the counters come "for free" with the mapping lookup (section
4.1).  The recursion model in :mod:`repro.oram.recursion` charges ORAM
accesses at PosMap-block granularity using :meth:`PositionMap.block_id`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.utils.bitops import is_power_of_two
from repro.utils.rng import DeterministicRng


@dataclass
class PosMapEntry:
    """A decoded view of one position map entry (for inspection/tests)."""

    addr: int
    leaf: int
    merge_bit: int
    break_bit: int
    prefetch_bit: int


class PositionMap:
    """Leaf mapping plus per-entry merge/break/prefetch bits.

    Args:
        num_blocks: number of program block addresses tracked.
        num_leaves: leaf labels are drawn uniformly from ``[0, num_leaves)``.
        entries_per_block: position map entries per PosMap block.
        rng: deterministic randomness source for initial and re-mapping.
    """

    def __init__(
        self,
        num_blocks: int,
        num_leaves: int,
        entries_per_block: int,
        rng: DeterministicRng,
    ):
        if num_blocks < 1:
            raise ValueError("position map needs at least one entry")
        if not is_power_of_two(entries_per_block):
            raise ValueError("entries per PosMap block must be a power of two")
        self.num_blocks = num_blocks
        self.num_leaves = num_leaves
        self.entries_per_block = entries_per_block
        self._rng = rng
        self._randbelow = rng.randbelow  # flattened leaf draw (hot path)
        # Compact typed storage: one machine word per entry instead of a
        # list of boxed ints, and C-speed slice comparisons for the leaf
        # equality scans below.
        self._leaves = array("q", (rng.random_leaf(num_leaves) for _ in range(num_blocks)))
        self._merge_bits = bytearray(num_blocks)
        self._break_bits = bytearray(num_blocks)
        self._prefetch_bits = bytearray(num_blocks)

    # ------------------------------------------------------------------ leaf
    def leaf(self, addr: int) -> int:
        """Leaf label currently assigned to ``addr``."""
        return self._leaves[addr]

    def set_leaf(self, addr: int, leaf: int) -> None:
        self._leaves[addr] = leaf

    def new_random_leaf(self) -> int:
        """Fresh uniformly random leaf label (protocol step 4)."""
        return self._randbelow(self.num_leaves)

    def remap(self, addrs, leaf: Optional[int] = None) -> int:
        """Map every address in ``addrs`` to one (new random) leaf.

        Used both by the normal access path (remap the whole super block
        together, section 3.2) and by merging (all members adopt one leaf).
        Returns the leaf used.
        """
        if leaf is None:
            leaf = self._randbelow(self.num_leaves)
        for addr in addrs:
            self._leaves[addr] = leaf
        return leaf

    # ------------------------------------------------------------- bit fields
    def merge_bit(self, addr: int) -> int:
        return self._merge_bits[addr]

    def set_merge_bit(self, addr: int, value: int) -> None:
        self._merge_bits[addr] = 1 if value else 0

    def break_bit(self, addr: int) -> int:
        return self._break_bits[addr]

    def set_break_bit(self, addr: int, value: int) -> None:
        self._break_bits[addr] = 1 if value else 0

    def prefetch_bit(self, addr: int) -> int:
        return self._prefetch_bits[addr]

    def set_prefetch_bit(self, addr: int, value: int) -> None:
        self._prefetch_bits[addr] = 1 if value else 0

    def merge_bits(self, base: int, size: int) -> List[int]:
        """Merge bits of the aligned group ``[base, base+size)``, low address first."""
        return list(self._merge_bits[base : base + size])

    def merge_bits_raw(self, base: int, size: int) -> bytearray:
        """Like :meth:`merge_bits` but returns the raw byte slice.

        Hot-path variant for counter reconstruction: skips boxing the bits
        into a list.  Callers must treat the result as read-only.
        """
        return self._merge_bits[base : base + size]

    def set_merge_bits(self, base: int, bits: List[int]) -> None:
        self._merge_bits[base : base + len(bits)] = bytes(bits)

    def break_bits(self, base: int, size: int) -> List[int]:
        """Break bits of the aligned group ``[base, base+size)``, low address first."""
        return list(self._break_bits[base : base + size])

    def break_bits_raw(self, base: int, size: int) -> bytearray:
        """Raw-slice variant of :meth:`break_bits` (see :meth:`merge_bits_raw`)."""
        return self._break_bits[base : base + size]

    def set_break_bits(self, base: int, bits: List[int]) -> None:
        self._break_bits[base : base + len(bits)] = bytes(bits)

    # --------------------------------------------------------- PosMap blocks
    def block_id(self, addr: int) -> int:
        """PosMap block holding the entry for ``addr`` (recursion granularity)."""
        return addr // self.entries_per_block

    def entry(self, addr: int) -> PosMapEntry:
        """Decoded entry view (tests / debugging)."""
        return PosMapEntry(
            addr=addr,
            leaf=self._leaves[addr],
            merge_bit=self._merge_bits[addr],
            break_bit=self._break_bits[addr],
            prefetch_bit=self._prefetch_bits[addr],
        )

    # ----------------------------------------------------------- super blocks
    def super_block_of(self, addr: int, max_size: int) -> Tuple[int, int]:
        """Infer the super block containing ``addr`` from leaf equality.

        The paper (section 4.2) does not store an explicit size field: "when
        the Pos-Map block is loaded, if the corresponding blocks in it are
        mapped to the same leaf label, the ORAM controller then treats these
        blocks as a super block".  We mirror that: the super block of
        ``addr`` is the largest aligned power-of-two group (up to
        ``max_size``, clipped to the PosMap block) whose members all share a
        leaf.  Random leaf collisions can create spurious super blocks, as
        in the real hardware; they are harmless because equal leaves really
        do mean the blocks share a path.

        Returns:
            (base address, size) of the super block; size is 1 when nothing
            is merged.
        """
        size = min(max_size, self.entries_per_block)
        leaves = self._leaves
        num_blocks = self.num_blocks
        while size > 2:
            # group_base(addr, size) inlined; ``size`` stays a power of two.
            base = addr & ~(size - 1)
            end = base + size
            # All-equal <=> the slice equals itself shifted by one entry
            # (a single C-level comparison instead of a Python loop).
            if end <= num_blocks and leaves[base : end - 1] == leaves[base + 1 : end]:
                return base, size
            size >>= 1
        if size == 2:
            # Pair granularity: a direct element compare beats building two
            # one-entry slices (this is every call at the default max size).
            base = addr & ~1
            if base + 2 <= num_blocks and leaves[base] == leaves[base + 1]:
                return base, 2
        return addr, 1

    def group_is_super_block(self, base: int, size: int) -> bool:
        """Whether the aligned group ``[base, base+size)`` shares one leaf."""
        end = base + size
        if end > self.num_blocks:
            return False
        leaves = self._leaves
        if size == 2:
            return leaves[base] == leaves[base + 1]
        return leaves[base : end - 1] == leaves[base + 1 : end]
