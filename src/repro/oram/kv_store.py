"""A functional oblivious key-value store built on the Path ORAM.

This exercises the *data path* of the substrate end to end: values are
encrypted with the probabilistic cipher, stored in tree blocks, moved by
real path accesses, and survive background evictions.  The timing simulator
never carries payloads; this store proves the functional machinery is a
real ORAM and powers the ``oblivious_kv_store`` example.

Access pattern: every ``get``/``put`` performs exactly one ORAM access
(plus any background evictions), regardless of the key or whether it is a
read or a write -- the properties ORAM guarantees (section 2.1).
"""

from __future__ import annotations

from typing import Optional

from repro.config import ORAMConfig
from repro.oram.crypto import ProbabilisticCipher
from repro.oram.path_oram import PathORAM
from repro.security.observer import AccessObserver
from repro.utils.rng import DeterministicRng


class ObliviousKVStore:
    """Fixed-capacity key-value store with an oblivious access pattern.

    Keys are integers in ``[0, capacity)``; values are byte strings no
    longer than the configured block payload.

    Args:
        config: ORAM geometry; the store holds ``config.num_blocks`` keys.
        key: symmetric key for the probabilistic cipher.
        seed: determinism seed.
        observer: optional :class:`AccessObserver` recording the
            adversary-visible access sequence (for the security tests).
    """

    def __init__(
        self,
        config: Optional[ORAMConfig] = None,
        key: bytes = b"\x13" * 16,
        seed: int = 7,
        observer: Optional[AccessObserver] = None,
    ):
        self.config = config or ORAMConfig(levels=8)
        rng = DeterministicRng(seed)
        self.observer = observer
        self._oram = self._make_oram(self.config, rng.fork(1), observer)
        self._cipher = ProbabilisticCipher(key, rng.fork(2))
        self.capacity = self._oram.position_map.num_blocks
        self.payload_bytes = self.config.block_bytes

    def _make_oram(self, config: ORAMConfig, rng: DeterministicRng, observer) -> PathORAM:
        """ORAM constructor hook; the resilient store swaps in the
        Merkle-verified variant with a fault injector attached."""
        return PathORAM(config, rng, observer=observer)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.capacity:
            raise KeyError(f"key {key} outside [0, {self.capacity})")

    def _access(self, key: int, new_value: Optional[bytes]) -> Optional[bytes]:
        """One oblivious access: fetch and optionally update in place.

        Reads and writes are indistinguishable: both perform the same path
        access and re-encryption (probabilistic encryption hides whether
        the payload changed).

        The payload is updated between ``begin_access`` and
        ``finish_access`` -- while the block is physically in the stash --
        so the write-back commits the new content.  An integrity layer
        (Merkle hashes ride the path write-back) therefore always hashes
        what was actually stored.
        """
        block = self._oram.begin_access([key])[key]
        old = None
        if block.data is not None:
            old = self._cipher.decrypt(block.data)
        if new_value is not None:
            block.data = self._cipher.encrypt(new_value)
        elif block.data is not None:
            # Re-encrypt on reads too, so ciphertexts never repeat.
            block.data = self._cipher.encrypt(old)
        self._oram.finish_access()
        self._oram.drain_stash()
        return old

    def get(self, key: int) -> Optional[bytes]:
        """Read the value for ``key`` (None if never written)."""
        self._check_key(key)
        return self._access(key, None)

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` for ``key``."""
        self._check_key(key)
        if len(value) > self.payload_bytes:
            raise ValueError(f"value exceeds {self.payload_bytes} bytes")
        self._access(key, value)

    def delete(self, key: int) -> None:
        """Reset a key to the unwritten state (obliviously: same as a put)."""
        self._check_key(key)
        self._oram.begin_access([key])[key].data = None
        self._oram.finish_access()
        self._oram.drain_stash()

    @property
    def oram(self) -> PathORAM:
        """The underlying ORAM (inspection / invariant checks in tests)."""
        return self._oram

    def access_count(self) -> int:
        """Total path accesses performed (real + background evictions)."""
        return self._oram.real_accesses + self._oram.dummy_accesses

    # ----------------------------------------------------------- persistence
    def save(self, path: str) -> None:
        """Checkpoint the store (tree + trusted state) to a file.

        The cipher key is NOT serialized: reopening requires the same key,
        exactly like a sealed-storage deployment.
        """
        from repro.oram.checkpoint import save_oram

        save_oram(self._oram, path)

    @classmethod
    def open(
        cls,
        path: str,
        key: bytes = b"\x13" * 16,
        seed: int = 7,
        observer: Optional[AccessObserver] = None,
    ) -> "ObliviousKVStore":
        """Reopen a checkpointed store with the original cipher key."""
        from repro.oram.checkpoint import restore_oram

        rng = DeterministicRng(seed)
        store = cls.__new__(cls)
        store._oram = restore_oram(path, rng=rng.fork(1))
        store.config = store._oram.config
        store.observer = observer
        store._oram.observer = observer
        store._cipher = ProbabilisticCipher(key, rng.fork(2))
        store.capacity = store._oram.position_map.num_blocks
        store.payload_bytes = store.config.block_bytes
        return store
