"""The Path ORAM protocol (paper section 2.2) with background eviction (2.4).

This is the *functional* ORAM: it moves real :class:`~repro.oram.block.Block`
objects between the binary tree and the stash.  Timing is charged separately
by :mod:`repro.memory.timing`; obliviousness can be audited by attaching an
:class:`~repro.security.observer.AccessObserver`.

Domain model
------------
Every block always lives in the ORAM domain: on the path of its mapped leaf,
or in the stash (the Path ORAM invariant).  The secure processor's caches
hold *copies* -- the standard DRAM-replacement interface of the secure
processor literature the paper builds on (Ren et al., ISCA'13):

* an LLC miss triggers an ORAM **read access** (:meth:`PathORAM.access`):
  the path is read, the requested super block is remapped, and the path is
  written back with the blocks still inside the ORAM;
* a dirty LLC eviction triggers an ORAM **write access** (the same
  :meth:`PathORAM.access`, data updated in place);
* clean evictions just drop the copy.

The :class:`Block` objects returned by :meth:`access` remain owned by the
ORAM; callers may read or update ``.data`` in place but must not hold
references across later accesses.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Optional, Sequence

from repro.config import ORAMConfig
from repro.controller.mixins import (
    BoundedDrainMixin,
    DeepestPlacementMixin,
    GreedyWritebackMixin,
    SharedLeafMixin,
)
from repro.controller.scheme import ORAMScheme
from repro.oram.block import Block
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash
from repro.oram.tree import BinaryTree
from repro.utils.rng import DeterministicRng

_LEAF_OF = attrgetter("leaf")


class PathORAM(
    SharedLeafMixin, DeepestPlacementMixin, GreedyWritebackMixin, BoundedDrainMixin
):
    """Functional Path ORAM over a binary tree with a stash and position map.

    Implements the :class:`~repro.controller.scheme.ORAMScheme` protocol;
    the shared stash/eviction/placement machinery lives in the
    :mod:`repro.controller.mixins` (``_evict_path`` below keeps a
    hand-inlined specialization of the greedy write-back, pinned by the
    golden determinism test).

    Args:
        config: geometry and capacity parameters.
        rng: deterministic randomness (leaf assignment, eviction paths).
        observer: optional callback object with ``on_path_access(leaf, kind)``
            recording the adversary-visible access sequence.
        populate: install ``config.num_blocks`` blocks at construction.
    """

    def __init__(
        self,
        config: ORAMConfig,
        rng: DeterministicRng,
        observer=None,
        populate: bool = True,
    ):
        self.config = config
        self.rng = rng
        self.observer = observer
        self.tree = BinaryTree(config.levels, config.bucket_size)
        self.stash = Stash(config.stash_blocks)
        self.position_map = PositionMap(
            num_blocks=max(1, config.num_blocks),
            num_leaves=config.num_leaves,
            entries_per_block=config.posmap_entries_per_block,
            rng=rng.fork(salt=0x9E3779B9),
        )
        # Statistics
        self.real_accesses = 0
        self.dummy_accesses = 0
        self.stash_soft_overflows = 0
        self._populated = False
        self._pending_writeback: Optional[int] = None
        # Scratch depth buckets reused by every _evict_path call (allocating
        # levels+1 lists per access showed up in profiles).  Entries are
        # always left empty between calls.
        self._depth_buckets: List[List[Block]] = [
            [] for _ in range(config.levels + 1)
        ]
        self._depth_appends = [bucket.append for bucket in self._depth_buckets]
        # Depth of a block on the path to leaf s is a pure function of
        # (block.leaf XOR s): levels minus the xor's bit length.  For trees
        # up to 2**20 leaves (1 MB) the whole function is precomputed as a
        # byte table, turning the per-block arithmetic of the eviction inner
        # loop into one indexed load.
        # Skip the per-access calls to the (empty) path hooks unless a
        # subclass actually overrides them (the integrity ORAM does).
        cls = type(self)
        self._hooks_active = (
            cls._before_path_read is not PathORAM._before_path_read
            or cls._after_path_write is not PathORAM._after_path_write
        )
        if config.num_leaves <= (1 << 20):
            levels = config.levels
            self._depth_of_xor: Optional[bytes] = bytes(
                levels if d == 0 else levels - d.bit_length()
                for d in range(config.num_leaves)
            )
        else:
            self._depth_of_xor = None
        if populate:
            self.populate()
        # Pin the treetop *after* the initial working set is placed so the
        # cache starts clean (on-chip store == off-chip image).  The config
        # validates k against the nominal tree; the functional attach point
        # additionally caps at the functional height so tiny scaled trees
        # always keep their leaf level off-chip.
        treetop_levels = min(config.treetop_levels, config.levels)
        if treetop_levels:
            self.tree.attach_treetop(treetop_levels)

    # ------------------------------------------------------------------ setup
    def populate(self) -> None:
        """Install the initial working set.

        Each block is placed on the path of its (already assigned) leaf as
        deep as possible; blocks that find no free bucket start life in the
        stash.  At the default utilization almost everything fits.

        Population is deferred when a super block scheme needs to adjust the
        position map first (the static scheme merges at initialization time,
        section 3.3, which must happen before blocks are physically placed).
        """
        if self._populated:
            raise RuntimeError("ORAM already populated")
        self._populated = True
        levels = self.config.levels
        z = self.config.bucket_size
        tree = self.tree

        def bucket_for(level: int, leaf: int) -> List[Block]:
            return tree.bucket(tree.bucket_index(level, leaf))

        for addr in range(self.position_map.num_blocks):
            leaf = self.position_map.leaf(addr)
            block = Block(addr, leaf)
            if not self._place_deepest(block, levels, z, bucket_for):
                self.stash.add(block)
        cache = tree.treetop
        if cache is not None:
            # Deferred population (populate=False at construction, scheme
            # calls populate() later) writes into an already-attached
            # treetop through the read-through bucket handles; the
            # off-chip image has none of it, so mark the filled buckets
            # dirty.  The usual construction order (populate, then attach)
            # leaves this loop unreached and the cache clean.
            for index, bucket in enumerate(cache.store):
                if bucket:
                    cache.dirty[index] = 1

    # ----------------------------------------------------------------- access
    def begin_access(
        self, addrs: Sequence[int], new_leaf: Optional[int] = None
    ) -> Dict[int, Block]:
        """Protocol steps 1-4 of one ORAM access on a (super) block.

        All of ``addrs`` must share a mapped leaf (the super block
        invariant).  The single path is read into the stash and every
        member is remapped to one new random leaf.  Between this call and
        :meth:`finish_access` every member physically sits in the stash, so
        the super block scheme may re-point groups with
        :meth:`remap_group` (merge/break decisions) before the write-back
        commits block positions.

        Args:
            addrs: basic-block addresses of the super block.
            new_leaf: override the random remap leaf (tests only).

        Returns:
            Mapping of address -> block for every member.  The blocks stay
            owned by the ORAM.
        """
        posmap = self.position_map
        if len(addrs) == 1:
            # Singleton fast path (most accesses): skip the mixin frame.
            leaf = posmap.leaf(addrs[0])
        else:
            leaf = self._validated_shared_leaf(addrs, posmap.leaf)
        if self._pending_writeback is not None:
            raise RuntimeError("previous access not finished")
        self.real_accesses += 1
        if self.observer is not None:
            self.observer.on_path_access(leaf, "real")
        # Step 2: read the whole path into the stash (stash.absorb_path
        # inlined -- this runs once per access).
        if self._hooks_active:
            self._before_path_read(leaf)
        stash = self.stash
        store = stash._blocks
        before = len(store)
        moved = self.tree.read_path_into(leaf, store)
        after = len(store)
        if after != before + moved:
            raise ValueError("duplicate block in stash (path/stash overlap)")
        if after > stash.max_occupancy:
            stash.max_occupancy = after
        # Step 4: remap every member to one fresh random leaf.  (Step 3,
        # returning the block, happens below -- the order does not matter
        # functionally and the remap must cover members still in the stash.)
        assigned = posmap.remap(addrs, new_leaf)
        peek = store.get
        fetched: Dict[int, Block] = {}
        for addr in addrs:
            block = peek(addr)
            if block is None:
                raise KeyError(f"block {addr} in neither tree nor stash")
            block.leaf = assigned
            fetched[addr] = block
        self._pending_writeback = leaf
        return fetched

    def finish_access(self) -> None:
        """Protocol step 5: write the accessed path back from the stash."""
        if self._pending_writeback is None:
            raise RuntimeError("no access in progress")
        leaf = self._pending_writeback
        self._pending_writeback = None
        self._evict_path(leaf)
        if self._hooks_active:
            self._after_path_write(leaf)

    def access(self, addrs: Sequence[int], new_leaf: Optional[int] = None) -> Dict[int, Block]:
        """One complete ORAM access (begin + finish, no scheme hook)."""
        fetched = self.begin_access(addrs, new_leaf)
        self.finish_access()
        return fetched

    def remap_group(self, addrs, leaf: Optional[int] = None) -> int:
        """Remap a group whose members are all on-chip (stash) or cached.

        Used by merge/break: updates the position map and keeps the leaf
        field of stash-resident blocks in sync.  Callers must only pass
        groups with no stale *tree*-resident member (guaranteed between
        ``begin_access`` and ``finish_access`` for the accessed super
        block, and for merge targets that already share one leaf).
        """
        assigned = self.position_map.remap(addrs, leaf)
        for addr in addrs:
            block = self.stash.peek(addr)
            if block is not None:
                block.leaf = assigned
        return assigned

    def dummy_access(self, kind: str = "dummy") -> None:
        """Background eviction / periodic dummy access (sections 2.4, 2.5).

        Reads and writes one uniformly random path without remapping any
        block: everything just read can at least return to where it was, so
        stash occupancy cannot increase, and blocks already in the stash
        may find room on the path.
        """
        leaf = self.rng.randbelow(self.config.num_leaves)
        self.dummy_accesses += 1
        if self.observer is not None:
            self.observer.on_path_access(leaf, kind)
        if self._hooks_active:
            self._before_path_read(leaf)
        # stash.absorb_path inlined (as in begin_access); the watermark
        # cannot rise here -- a dummy access never adds net blocks, and the
        # eviction below runs before the next occupancy reading -- but the
        # duplicate check is kept: it guards the same invariant.
        stash = self.stash
        store = stash._blocks
        before = len(store)
        moved = self.tree.read_path_into(leaf, store)
        if len(store) != before + moved:
            raise ValueError("duplicate block in stash (path/stash overlap)")
        if len(store) > stash.max_occupancy:
            stash.max_occupancy = len(store)
        self._evict_path(leaf)
        if self._hooks_active:
            self._after_path_write(leaf)

    # drain_stash comes from BoundedDrainMixin; these two hooks bind it to
    # the stash capacity and the soft-overflow counter.
    def _stash_over_limit(self) -> bool:
        # stash.over_capacity() inlined: this check runs before every real
        # request and is almost always False.
        return len(self.stash._blocks) > self.stash.capacity

    def _note_drain_overflow(self) -> None:
        self.stash_soft_overflows += 1

    # ----------------------------------------------------------------- hooks
    def _before_path_read(self, leaf: int) -> None:
        """Hook before a path is read (integrity verification attaches here)."""

    def _after_path_write(self, leaf: int) -> None:
        """Hook after a path is written back (integrity update attaches here)."""

    def rebuild_auxiliary(self) -> None:
        """Rebuild derived structures after state was installed externally.

        Called by checkpoint restore once the tree/stash/posmap contents are
        in place.  The base ORAM derives nothing from its contents; the
        Merkle-verified subclass rebuilds its hash tree here.
        """

    # -------------------------------------------------------------- eviction
    def _evict_path(self, leaf: int) -> None:
        """Greedy write-back of the stash onto path ``leaf`` (protocol step 5).

        Every stash block is scored by the deepest level it may occupy on
        this path -- the length of the common prefix of its mapped leaf and
        ``leaf``.  Buckets are filled deepest-first; blocks that do not fit
        remain in the stash.

        Implementation: blocks are bucketed by eligible depth in one O(S)
        pass (replacing an O(S log S) sort) and consumed deepest-bucket
        first, preserving stash insertion order within each depth -- the
        exact consumption order the previous stable sort produced, so the
        resulting tree state is bit-identical.  This is a hand-inlined
        specialization of
        :meth:`~repro.controller.mixins.GreedyWritebackMixin._greedy_writeback`
        (byte-table depth lookup, reused scratch buckets, direct bucket
        stores); the parity suite checks the two agree.
        """
        levels = self.config.levels
        z = self.config.bucket_size
        tree = self.tree
        path = tree._path_cache.get(leaf)
        if path is None:
            path = tree.path_indices(leaf)
        # One pass: bucket stash blocks by common-prefix depth.  The depth
        # arithmetic is bitops.common_prefix_length inlined (the call
        # dominated the old profile at ~35 invocations per access), the
        # depth-bucket lists (and their pre-bound ``append`` methods) are
        # reused scratch space, and for small trees the xor->depth function
        # is a precomputed byte table.
        by_depth = self._depth_buckets
        appends = self._depth_appends
        table = self._depth_of_xor
        stash_blocks = self.stash._blocks
        if table is not None:
            # The xor and the table lookup run entirely in C (two map
            # stages over one pass of the stash, zipped with a second
            # iterator over the same dict view for the block objects).
            depths = map(
                table.__getitem__,
                map(leaf.__xor__, map(_LEAF_OF, stash_blocks.values())),
            )
            for depth, block in zip(depths, stash_blocks.values()):
                appends[depth](block)
        else:
            for block in stash_blocks.values():
                differing = block.leaf ^ leaf
                appends[
                    levels if differing == 0 else levels - differing.bit_length()
                ](block)
        # Consume deepest-bucket first.  ``flat`` grows one depth bucket per
        # level, so before filling level L it holds exactly the blocks with
        # score >= L in consumption order (score descending, stash insertion
        # order within a score); each bucket then takes the next <= Z blocks
        # by slicing -- no per-block Python loop.  Bucket lists are written
        # into the tree storage directly: ``placed`` never exceeds ``z`` by
        # construction, so the write_bucket_at overflow check is redundant
        # here and skipped (this is the single hottest loop of the
        # simulator).  Every eviction immediately follows a read of the same
        # path (begin/finish_access and dummy_access both read first), so
        # the path buckets are empty on entry and levels that place nothing
        # need no write at all.
        buckets = tree._buckets
        split = tree._treetop_levels  # pinned path levels (0 without a treetop)
        treetop = tree.treetop
        flat: List[Block] = []
        total = 0  # blocks accumulated into ``flat``
        pos = 0  # blocks of ``flat`` already placed
        for level in range(levels, -1, -1):
            depth_bucket = by_depth[level]
            if depth_bucket:
                flat.extend(depth_bucket)
                total += len(depth_bucket)
                del depth_bucket[:]  # leave the scratch space empty
            if total > pos:
                take = total - pos
                if take > z:
                    take = z
                if level < split:
                    # Pinned level: the bucket lives in on-chip SRAM; mark
                    # it dirty so a flush knows the DRAM image is stale.
                    treetop.store[path[level]] = flat[pos : pos + take]
                    treetop.dirty[path[level]] = 1
                else:
                    buckets[path[level]] = flat[pos : pos + take]
                pos += take
        # stash.remove_all inlined: drop the placed blocks from the stash.
        for block in flat[:pos]:
            del stash_blocks[block.addr]

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Verify the path invariant, block conservation, and bucket sizes.

        Used by tests and debug builds only: this walks the whole tree.

        Raises:
            AssertionError: if any invariant is violated.
        """
        seen: Dict[int, str] = {}
        z = self.config.bucket_size
        for index in range(self.tree.num_buckets):
            bucket = self.tree.bucket(index)
            assert len(bucket) <= z, f"bucket {index} holds {len(bucket)} > Z={z}"
            for block in bucket:
                assert block.addr not in seen, f"block {block.addr} duplicated"
                seen[block.addr] = "tree"
                mapped = self.position_map.leaf(block.addr)
                assert block.leaf == mapped, (
                    f"block {block.addr}: tree copy leaf {block.leaf} != posmap {mapped}"
                )
                # The bucket must lie on the path of the mapped leaf.
                level = (index + 1).bit_length() - 1
                expected = self.tree.bucket_index(level, mapped)
                assert expected == index, (
                    f"block {block.addr} (leaf {mapped}) found off-path at bucket {index}"
                )
        for addr, block in self.stash.items():
            assert addr not in seen, f"block {addr} in both tree and stash"
            seen[addr] = "stash"
            assert block.leaf == self.position_map.leaf(addr)
        assert len(seen) == self.position_map.num_blocks, (
            f"{self.position_map.num_blocks - len(seen)} blocks lost"
        )

    # --------------------------------------------------------------- queries
    @property
    def num_blocks(self) -> int:
        """Logical address-space size (ORAMScheme protocol)."""
        return self.position_map.num_blocks

    @property
    def stash_occupancy(self) -> int:
        """Blocks currently held on-chip (ORAMScheme protocol)."""
        return len(self.stash)

    def locate(self, addr: int) -> str:
        """Return 'tree' or 'stash' for a block (tests/debugging).

        One tree pass via :meth:`BinaryTree.address_index` -- never used
        on the simulation hot path.
        """
        if addr in self.stash:
            return "stash"
        if addr in self.tree.address_index():
            return "tree"
        raise KeyError(f"block {addr} not found anywhere")


ORAMScheme.register(PathORAM)
